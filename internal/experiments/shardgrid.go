// Shard grid: the scaled read-storm experiment that exercises the sharded
// multi-core engine end to end. A datacenter topology is built as a sharded
// cluster (one Env, registry, and shard.LP per host), client hosts drive
// closed-loop read streams against datanode hosts over the fabric, and every
// completion is logged on the receiving host. The experiment's contract is
// the tentpole's: the SLO rows and the completion-log fingerprint are
// byte-identical for every shard count K, so the parallel run is a drop-in
// replacement for the serial one — only the wall clock changes.
package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/workload"
)

// ShardGridConfig describes one sharded read-storm scenario.
type ShardGridConfig struct {
	Seed int64
	// Topology: Domains x RacksPerDomain x HostsPerRack hosts. Defaults
	// 1 x 4 x 4.
	Domains        int
	RacksPerDomain int
	HostsPerRack   int
	// ClientHosts is how many hosts (taken from the topology tail) drive
	// load; the rest serve as datanodes. Default 4.
	ClientHosts int
	// StreamsPerHost is the closed-loop reader count per client host; each
	// stream keeps exactly one request in flight. Default 4.
	StreamsPerHost int
	// ReadsPerStream is how many reads each stream issues. Default 32.
	ReadsPerStream int
	// ReadSize is bytes per read. Default 256 KiB.
	ReadSize int64
	// FileSize is the per-datanode object size reads are spread over.
	// Default 64 MiB.
	FileSize int64
	// Deadline bounds the storm in virtual time. Default 2 s.
	Deadline time.Duration
	// Shards lists the shard counts to run, one grid cell each. Default
	// {1, 4}. Cell 0 is the serial baseline the others are compared to.
	Shards []int
	// Faults, when non-empty, is armed on a fresh per-host plan (disk and
	// per-host fabric faults), so every RNG draw stays LP-local and the
	// chaos run is as K-invariant as the quiet one. Use latency-shaping
	// points (disk.read.slow, net.frame.delay) — the closed-loop streams
	// have no timeout path, so a dropped frame would wedge the storm.
	Faults faults.Spec
}

// WithDefaults fills zero fields.
func (c ShardGridConfig) WithDefaults() ShardGridConfig {
	if c.Domains == 0 {
		c.Domains = 1
	}
	if c.RacksPerDomain == 0 {
		c.RacksPerDomain = 4
	}
	if c.HostsPerRack == 0 {
		c.HostsPerRack = 4
	}
	if c.ClientHosts == 0 {
		c.ClientHosts = 4
	}
	if c.StreamsPerHost == 0 {
		c.StreamsPerHost = 4
	}
	if c.ReadsPerStream == 0 {
		c.ReadsPerStream = 32
	}
	if c.ReadSize == 0 {
		c.ReadSize = 256 << 10
	}
	if c.FileSize == 0 {
		c.FileSize = 64 << 20
	}
	if c.Deadline == 0 {
		c.Deadline = 2 * time.Second
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4}
	}
	return c
}

// ShardGridCell is one shard count's run: virtual-time results that must not
// depend on K, plus the wall-clock measurements that should.
type ShardGridCell struct {
	// Shards is the requested worker count K.
	Shards int
	// Hosts is the topology size.
	Hosts int
	// Rows carries the storm's SLO aggregates (virtual time; K-invariant).
	Rows []SLORow
	// Fingerprint is FNV-1a over every host's completion log and the
	// rendered rows, in host order. Byte-identity across K collapses to
	// comparing these.
	Fingerprint uint64
	// Events is the total simulated events fired across all LPs.
	Events uint64
	// Wall is the host wall-clock time the cell took (the only field that
	// may — should — vary with K).
	Wall time.Duration
}

// RunShardGrid runs one cell per configured shard count and returns them in
// order. Every cell rebuilds the cluster from the same seed, so cells differ
// only in K; callers assert Fingerprint equality across cells to check the
// engine's partition invariance, and compare Wall for the speedup.
func RunShardGrid(cfg ShardGridConfig) ([]ShardGridCell, error) {
	cfg = cfg.WithDefaults()
	total := cfg.Domains * cfg.RacksPerDomain * cfg.HostsPerRack
	if cfg.ClientHosts >= total {
		return nil, fmt.Errorf("shardgrid: %d client hosts leave no datanodes in a %d-host topology", cfg.ClientHosts, total)
	}
	if cfg.ReadSize > cfg.FileSize {
		return nil, fmt.Errorf("shardgrid: read size %d exceeds file size %d", cfg.ReadSize, cfg.FileSize)
	}
	cells := make([]ShardGridCell, 0, len(cfg.Shards))
	for _, k := range cfg.Shards {
		cell, err := runShardCell(cfg, k)
		if err != nil {
			return nil, fmt.Errorf("shardgrid: shards=%d: %w", k, err)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// Ports for the storm protocol: a request to reqPort+stream is answered on
// respPort+stream of the requesting host, so each stream has a private
// FIFO lane and reply matching needs no message IDs.
const (
	shardGridReqPort  = 7000
	shardGridRespPort = 7400
)

func runShardCell(cfg ShardGridConfig, k int) (ShardGridCell, error) {
	start := time.Now() //lint:allow determinism(wall clock measured from outside the simulation)
	c := cluster.NewSharded(cfg.Seed, cluster.Params{}, k)
	defer c.Close()
	hosts := c.BuildTopology(cluster.TopologySpec{
		Domains:        cfg.Domains,
		RacksPerDomain: cfg.RacksPerDomain,
		HostsPerRack:   cfg.HostsPerRack,
	})
	c.AssignRackShards()
	dns := hosts[:len(hosts)-cfg.ClientHosts]
	clients := hosts[len(hosts)-cfg.ClientHosts:]

	if len(cfg.Faults) > 0 {
		for _, h := range hosts {
			plan := faults.NewPlan(h.Env)
			for _, r := range cfg.Faults {
				plan.Set(r)
			}
			h.Disk.InjectFaults(plan)
			c.Fabric.InjectHostFaults(h.Name, plan)
		}
	}

	// Datanode side: per stream lane, serve reads through the host page
	// cache with disk fills on miss. The request carries no parameters —
	// the offset is derived from a per-(lane, source) counter, which is
	// deterministic because each closed-loop stream has one request in
	// flight (its lane is strictly FIFO).
	span := cfg.FileSize - cfg.ReadSize + 1
	for _, h := range dns {
		h := h
		obj := int64(h.ID)
		for s := 0; s < cfg.StreamsPerHost; s++ {
			s := s
			counts := make(map[string]int64)
			c.Fabric.BindHostPort(h.Name, shardGridReqPort+s, func(fr netsim.Frame) {
				cnt := counts[fr.SrcHost]
				counts[fr.SrcHost] = cnt + 1
				off := (cnt * 2654435761) % span
				reply := func() {
					h.NIC.SendToHost(fr.SrcHost, shardGridRespPort+s,
						netsim.Frame{Payload: data.NewSlice(data.Zero(cfg.ReadSize))}, nil)
				}
				_, miss := h.Cache.Lookup(obj, off, cfg.ReadSize)
				if miss > 0 {
					h.Disk.ReadAsync(miss, func() {
						h.Cache.Insert(obj, off, cfg.ReadSize)
						reply()
					})
					return
				}
				reply()
			})
		}
	}

	// Client side: StreamsPerHost closed-loop readers per client host, each
	// walking the datanodes round-robin from its own starting point. Each
	// stream's replies land on its private response port, so reply matching
	// is per-lane FIFO.
	nStreams := len(clients) * cfg.StreamsPerHost
	ops := make([]workload.OpResult, nStreams*cfg.ReadsPerStream)
	logs := make([]*strings.Builder, len(clients))
	streamsDone := 0
	for ci, h := range clients {
		ci, h := ci, h
		logs[ci] = &strings.Builder{}
		for s := 0; s < cfg.StreamsPerHost; s++ {
			s := s
			stream := ci*cfg.StreamsPerHost + s
			arrived := 0
			sig := sim.NewSignal(h.Env)
			c.Fabric.BindHostPort(h.Name, shardGridRespPort+s, func(fr netsim.Frame) {
				arrived++
				sig.Signal()
			})
			h.Go(fmt.Sprintf("storm:%s:%d", h.Name, s), func(p *sim.Proc) {
				for i := 0; i < cfg.ReadsPerStream; i++ {
					dn := dns[(stream+i)%len(dns)]
					t0 := h.Env.Now()
					h.NIC.SendToHost(dn.Name, shardGridReqPort+s,
						netsim.Frame{Payload: data.NewSlice(data.Zero(64))}, nil)
					for arrived <= i {
						sig.Wait(p)
					}
					lat := h.Env.Now() - t0
					ops[stream*cfg.ReadsPerStream+i] = workload.OpResult{Start: t0, Latency: lat, Label: "ok"}
					fmt.Fprintf(logs[ci], "%s s%d r%d <- %s %dB lat=%v\n",
						h.Name, s, i, dn.Name, cfg.ReadSize, lat)
				}
				streamsDone++
			})
		}
	}

	if err := c.RunUntil(cfg.Deadline); err != nil {
		return ShardGridCell{}, err
	}
	if streamsDone != nStreams {
		return ShardGridCell{}, fmt.Errorf("storm wedged: %d of %d streams finished by %v", streamsDone, nStreams, cfg.Deadline)
	}

	slo := workload.SLOOf(ops, "ok")
	row := SLORow{
		Cell:     fmt.Sprintf("hosts=%d dn=%d streams=%d", len(hosts), len(dns), nStreams),
		Phase:    "steady",
		QPS:      float64(len(ops)) / cfg.Deadline.Seconds(),
		Arrivals: len(ops),
		OKs:      len(ops),
		P50us:    slo.P50.Microseconds(),
		P95us:    slo.P95.Microseconds(),
		P99us:    slo.P99.Microseconds(),
		MaxUs:    slo.Max.Microseconds(),
	}
	if len(cfg.Faults) > 0 {
		row.Phase = "chaos"
	}
	rows := []SLORow{row}

	fp := fnv.New64a()
	for _, l := range logs {
		fp.Write([]byte(l.String()))
	}
	fp.Write([]byte(RenderSLORows(rows)))

	return ShardGridCell{
		Shards:      k,
		Hosts:       len(hosts),
		Rows:        rows,
		Fingerprint: fp.Sum64(),
		Events:      c.Coord.Fired(),
		Wall:        time.Since(start), //lint:allow determinism(wall clock measured from outside the simulation)
	}, nil
}
