package experiments

import (
	"testing"
	"time"

	"vread/internal/faults"
)

// smallGrid keeps the invariance tests fast: 8 hosts, 2 client hosts, short
// storm. Shard counts cover serial, even split, ragged split, and
// one-LP-per-shard.
func smallGrid() ShardGridConfig {
	return ShardGridConfig{
		Seed:           11,
		Domains:        1,
		RacksPerDomain: 4,
		HostsPerRack:   2,
		ClientHosts:    2,
		StreamsPerHost: 2,
		ReadsPerStream: 8,
		ReadSize:       64 << 10,
		FileSize:       8 << 20,
		Deadline:       500 * time.Millisecond,
		Shards:         []int{1, 2, 3, 8},
	}
}

// TestShardGridCountInvariance is the tentpole acceptance check at the
// experiment level: rows, completion logs (via the fingerprint), and event
// counts are byte-identical for every K. Run under -race this also exercises
// the full cluster/netsim/storage stack across concurrent shards.
func TestShardGridCountInvariance(t *testing.T) {
	cells, err := RunShardGrid(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	base := cells[0]
	if base.Shards != 1 {
		t.Fatalf("cell 0 ran with %d shards, want serial baseline", base.Shards)
	}
	if base.Events == 0 || base.Rows[0].OKs == 0 {
		t.Fatalf("baseline did no work: %+v", base)
	}
	wantRows := RenderSLORows(base.Rows)
	for _, cell := range cells[1:] {
		if got := RenderSLORows(cell.Rows); got != wantRows {
			t.Errorf("K=%d rows diverge:\n--- K=1 ---\n%s--- K=%d ---\n%s", cell.Shards, wantRows, cell.Shards, got)
		}
		if cell.Fingerprint != base.Fingerprint {
			t.Errorf("K=%d fingerprint %#x != serial %#x", cell.Shards, cell.Fingerprint, base.Fingerprint)
		}
		if cell.Events != base.Events {
			t.Errorf("K=%d fired %d events, serial fired %d", cell.Shards, cell.Events, base.Events)
		}
	}
}

// TestShardGridChaosInvariance arms latency-shaping faults on per-host plans
// and requires the chaos run to stay K-invariant too: every fault draw
// happens on the host's own Env RNG, so injections land identically at any
// shard count. The chaos fingerprint must also differ from the quiet one —
// otherwise the faults never fired and the test would be vacuous.
func TestShardGridChaosInvariance(t *testing.T) {
	quiet, err := RunShardGrid(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallGrid()
	cfg.Shards = []int{1, 3, 8}
	cfg.Faults = faults.Spec{
		{Point: faults.DiskReadSlow, Prob: 0.3, Delay: 2 * time.Millisecond},
		{Point: faults.NetFrameDelay, Prob: 0.2, Delay: 500 * time.Microsecond},
	}
	cells, err := RunShardGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cells[0]
	if base.Fingerprint == quiet[0].Fingerprint {
		t.Fatal("chaos run matches quiet run: faults never fired")
	}
	if got := base.Rows[0].Phase; got != "chaos" {
		t.Fatalf("chaos row phase = %q", got)
	}
	for _, cell := range cells[1:] {
		if cell.Fingerprint != base.Fingerprint {
			t.Errorf("chaos K=%d fingerprint %#x != serial %#x", cell.Shards, cell.Fingerprint, base.Fingerprint)
		}
		if cell.Events != base.Events {
			t.Errorf("chaos K=%d fired %d events, serial fired %d", cell.Shards, cell.Events, base.Events)
		}
	}
}

// TestShardGridValidation covers the config guards.
func TestShardGridValidation(t *testing.T) {
	cfg := smallGrid()
	cfg.ClientHosts = 8 // == total hosts: no datanodes left
	if _, err := RunShardGrid(cfg); err == nil {
		t.Error("all-client topology did not error")
	}
	cfg = smallGrid()
	cfg.ReadSize = 16 << 20
	cfg.FileSize = 8 << 20
	if _, err := RunShardGrid(cfg); err == nil {
		t.Error("read larger than file did not error")
	}
}
