package experiments

import (
	"fmt"
	"time"

	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// FaultProfile is one armed fault mix of the resilience sweep.
type FaultProfile struct {
	Name string
	Spec string // faults.ParseSpec syntax; empty = fault-free baseline
	// TCP runs the profile over the TCP daemon transport — needed for the
	// frame-level faults, which only apply to host-terminated TCP frames
	// (guest TCP has no retransmit model, and RDMA loss shows up as QP
	// teardown instead).
	TCP bool
}

// DefaultFaultProfiles is the ablation grid RunFaultSweep uses when the
// caller passes none: the baseline plus one profile per degradation
// mechanism (retry, timeout + transport downgrade, watchdog, crash
// fallback).
var DefaultFaultProfiles = []FaultProfile{
	{Name: "baseline"},
	{Name: "slow-disk", Spec: "disk.read.slow:p=0.2,delay=2ms"},
	{Name: "torn-reads", Spec: "disk.read.torn:p=0.05"},
	{Name: "lossy-net", Spec: "net.frame.drop:p=0.01", TCP: true},
	{Name: "flaky-rdma", Spec: "rdma.qp.teardown:p=0.01"},
	{Name: "lost-doorbells", Spec: "ring.doorbell.lost:p=0.3"},
	{Name: "crashy-daemon", Spec: "daemon.crash:p=0.03"},
}

// RunFaultSweep measures remote vRead read throughput under each fault
// profile — the resilience ablation: how much goodput each degradation layer
// preserves relative to the fault-free baseline. Rows also report how often
// the faultpoints fired and how many retries/downgrades the run needed, so a
// profile that silently never fired is visible in the output.
func RunFaultSweep(opt Options, profiles ...FaultProfile) ([]AblationRow, error) {
	opt = opt.withDefaults()
	if len(profiles) == 0 {
		profiles = DefaultFaultProfiles
	}
	specs := make([]faults.Spec, len(profiles))
	for i, pr := range profiles {
		if pr.Spec == "" {
			continue
		}
		spec, err := faults.ParseSpec(pr.Spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: fault profile %s: %w", pr.Name, err)
		}
		specs[i] = spec
	}
	return runCells(opt, len(profiles), func(i int, o Options) ([]AblationRow, error) {
		pr := profiles[i]
		o.VRead = true
		o.Faults = specs[i]
		if pr.TCP {
			o.Transport = core.TransportTCP
		}
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(Remote)
		fileSize := o.scaled(1<<30, 64<<20)
		const path = "/bench/faults"
		var elapsed time.Duration
		if err := tb.Run("fault-sweep-"+pr.Name, 4*time.Hour, func(p *sim.Proc) error {
			if err := tb.Client.WriteFile(p, path, data.Pattern{Seed: 17, Size: fileSize}); err != nil {
				return err
			}
			tb.DropAllCaches()
			start := tb.C.Env.Now()
			if err := readAll(p, tb, path, 1<<20); err != nil {
				return err
			}
			elapsed = tb.C.Env.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
		rows := []AblationRow{{
			Study:  "fault-sweep",
			Config: pr.Name,
			Value:  metrics.Throughput(fileSize, elapsed),
			Unit:   "MB/s cold remote read",
		}}
		if tb.Faults != nil {
			st := tb.Mgr.DaemonStats("client")
			recoveries := float64(st.RemoteRetries + st.Crashes + tb.Mgr.Downgrades() +
				tb.Mgr.LibStats("client").Retries)
			rows = append(rows,
				AblationRow{Study: "fault-sweep", Config: pr.Name, Value: float64(tb.Faults.TotalFired()), Unit: "faults fired"},
				AblationRow{Study: "fault-sweep", Config: pr.Name, Value: recoveries, Unit: "recoveries"},
			)
		}
		return rows, nil
	})
}
