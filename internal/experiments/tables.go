package experiments

import (
	"math/rand"
	"time"

	"vread/internal/sim"
	"vread/internal/workload"
)

// Table2Row is one row of Table 2: an HBase PerformanceEvaluation phase.
type Table2Row struct {
	Phase   string  // "Scan" | "SequentialRead" | "RandomRead"
	Vanilla float64 // MB/s
	VRead   float64 // MB/s
}

// Improvement returns the percentage improvement of vRead over vanilla.
func (r Table2Row) Improvement() float64 {
	if r.Vanilla == 0 {
		return 0
	}
	return (r.VRead - r.Vanilla) / r.Vanilla * 100
}

// RunTable2 reproduces Table 2: HBase-0.94 PerformanceEvaluation over the
// hybrid 4-VM setup at 2.0 GHz (frequency scaling disabled, as the paper
// notes). The paper inserts 5 million rows; Scale shrinks that.
func RunTable2(opt Options) ([]Table2Row, error) {
	opt = opt.withDefaults()
	opt.FreqHz = 2_000_000_000
	opt.ExtraVMs = true

	// The two systems are independent testbeds: one cell each, merged into
	// the three phase rows afterwards.
	type cellResult struct {
		vread bool
		vals  [3]float64 // scan, sequential, random MB/s
	}
	res, err := runCells(opt, 2, func(i int, o Options) ([]cellResult, error) {
		vread := i == 1
		o.VRead = vread
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(Hybrid)
		cfg := workload.HBaseConfig{
			Rows: o.scaled(5_000_000, 20_000),
			Seed: uint64(o.Seed),
		}
		// PE scans the full table; the get phases read a slice of it so the
		// run stays tractable at every scale.
		getRows := cfg.Rows / 10
		if getRows < 1000 {
			getRows = 1000
		}
		var scan, seq, rnd workload.PEResult
		if err := tb.Run("table2-"+sysName(vread), 8*time.Hour, func(p *sim.Proc) error {
			h, err := workload.SetupHBase(p, tb.Client, cfg)
			if err != nil {
				return err
			}
			tb.DropAllCaches()
			if scan, err = h.Scan(p, cfg.Rows); err != nil {
				return err
			}
			if seq, err = h.SequentialRead(p, getRows); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(o.Seed))
			rnd, err = h.RandomRead(p, getRows, rng)
			return err
		}); err != nil {
			return nil, err
		}
		return []cellResult{{vread: vread, vals: [3]float64{scan.MBps(), seq.MBps(), rnd.MBps()}}}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := []Table2Row{{Phase: "Scan"}, {Phase: "SequentialRead"}, {Phase: "RandomRead"}}
	for _, c := range res {
		for i := range rows {
			if c.vread {
				rows[i].VRead = c.vals[i]
			} else {
				rows[i].Vanilla = c.vals[i]
			}
		}
	}
	return rows, nil
}

// Table3Row is one column of Table 3: a completion time pair.
type Table3Row struct {
	Workload string // "Hive select" | "Sqoop export"
	Vanilla  time.Duration
	VRead    time.Duration
}

// Reduction returns the percentage time reduction from vRead.
func (r Table3Row) Reduction() float64 {
	if r.Vanilla == 0 {
		return 0
	}
	return float64(r.Vanilla-r.VRead) / float64(r.Vanilla) * 100
}

// RunTable3 reproduces Table 3: the Hive range select over 30 M rows and
// the Sqoop export of the same table into an external MySQL, on the hybrid
// 4-VM setup at 2.0 GHz.
func RunTable3(opt Options) ([]Table3Row, error) {
	opt = opt.withDefaults()
	opt.FreqHz = 2_000_000_000
	opt.ExtraVMs = true

	type cellResult struct {
		vread       bool
		hive, sqoop time.Duration
	}
	res, err := runCells(opt, 2, func(i int, o Options) ([]cellResult, error) {
		vread := i == 1
		o.VRead = vread
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(Hybrid)
		table := workload.HiveConfig{
			Rows: o.scaled(30_000_000, 100_000),
			Seed: uint64(o.Seed),
		}
		var hive workload.HiveResult
		var sqoop workload.SqoopResult
		if err := tb.Run("table3-"+sysName(vread), 8*time.Hour, func(p *sim.Proc) error {
			if err := workload.SetupHiveTable(p, tb.Client, table); err != nil {
				return err
			}
			tb.DropAllCaches()
			var err error
			if hive, err = workload.RunHiveSelect(p, tb.Engine, table); err != nil {
				return err
			}
			tb.DropAllCaches()
			sqoop, err = workload.RunSqoopExport(p, tb.Engine, workload.SqoopConfig{Table: table})
			return err
		}); err != nil {
			return nil, err
		}
		return []cellResult{{vread: vread, hive: hive.Elapsed, sqoop: sqoop.Elapsed}}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := []Table3Row{{Workload: "Hive select"}, {Workload: "Sqoop export"}}
	for _, c := range res {
		if c.vread {
			rows[0].VRead = c.hive
			rows[1].VRead = c.sqoop
		} else {
			rows[0].Vanilla = c.hive
			rows[1].Vanilla = c.sqoop
		}
	}
	return rows, nil
}
