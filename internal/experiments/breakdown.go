package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// BreakdownRow is one stacked bar of Figures 6, 7 or 8: the per-tag CPU
// utilization of one side (client or datanode) under one system.
type BreakdownRow struct {
	Figure    string             // "fig6" | "fig7" | "fig8"
	Side      string             // "client" | "datanode"
	System    string             // "vanilla" | "vRead"
	Breakdown map[string]float64 // tag → fraction of one core
}

// Total returns the bar height (entity utilization, 0..1 of a core).
func (r BreakdownRow) Total() float64 {
	var t float64
	for _, v := range r.Breakdown {
		t += v
	}
	return t
}

// RunFig6 reproduces Figure 6: CPU utilization of a co-located 1 GB read
// with 1 MB requests, vanilla vs vRead, broken down by the paper's tags.
func RunFig6(opt Options) ([]BreakdownRow, error) {
	rows, _, err := runBreakdown(opt, "fig6", Colocated, core.TransportRDMA)
	return rows, err
}

// RunFig7 reproduces Figure 7: the remote read with RDMA daemons.
func RunFig7(opt Options) ([]BreakdownRow, error) {
	rows, _, err := runBreakdown(opt, "fig7", Remote, core.TransportRDMA)
	return rows, err
}

// RunFig8 reproduces Figure 8: the remote read with TCP daemons.
func RunFig8(opt Options) ([]BreakdownRow, error) {
	rows, _, err := runBreakdown(opt, "fig8", Remote, core.TransportTCP)
	return rows, err
}

// runBreakdown runs the figure's workload and returns two row sets computed
// from independent ledgers: rows is derived from per-request trace charges
// (every request traced), regRows from the metrics.Registry's cycle counters.
// The registry is the ground truth the trace pipeline is cross-checked
// against; TestBreakdownSpanRegistryAgreement asserts they match per tag.
func runBreakdown(opt Options, figure string, scenario Scenario, tr core.Transport) (rows, regRows []BreakdownRow, err error) {
	opt = opt.withDefaults()
	opt.ExtraVMs = false
	opt.Transport = tr
	type cellResult struct {
		rows, regRows []BreakdownRow
	}
	res, err := runCells(opt, 2, func(i int, o Options) ([]cellResult, error) {
		vread := i == 0 // row order: vRead first, then vanilla
		o.VRead = vread
		// Breakdown bars need every request's charges, whatever sampling the
		// caller asked for. Reuse the cell's collector when one was passed
		// (so -trace exports see these requests too), but reduce only the
		// traces this testbed appends.
		col := o.Traces
		if col == nil {
			col = &trace.Collector{}
		}
		o.Traces = col
		o.TraceEvery = 1
		base := len(col.Traces)
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(scenario)
		fileSize := o.scaled(1<<30, 64<<20)
		const path = "/bench/breakdown"
		if err := tb.Run(figure+"-setup", time.Hour, func(p *sim.Proc) error {
			return tb.Client.WriteFile(p, path, data.Pattern{Seed: 6, Size: fileSize})
		}); err != nil {
			return nil, err
		}
		var mark time.Duration
		if err := tb.Run(figure+"-read", time.Hour, func(p *sim.Proc) error {
			// Let the guests' asynchronous writeback from the setup phase
			// drain before the window opens: those cycles belong to no read
			// request, so they would show up in the registry but not in any
			// trace.
			p.Sleep(5 * time.Second)
			tb.DropAllCaches()
			mark = tb.C.Env.Now()
			tb.C.Reg.MarkWindow(mark)
			r, err := tb.Client.Open(p, path)
			if err != nil {
				return err
			}
			defer r.Close(p)
			for {
				if _, err := r.Read(p, 1<<20); errors.Is(err, io.EOF) {
					return nil
				} else if err != nil {
					return err
				}
			}
		}); err != nil {
			return nil, err
		}

		now := tb.C.Env.Now()
		freq := tb.Opt.FreqHz
		spanCyc := trace.BreakdownCycles(col.Traces[base:])
		spanBD := func(entity string) map[string]float64 {
			return spanBreakdown(tb.C.Reg, spanCyc, entity, now-mark, freq)
		}
		regBD := func(entity string) map[string]float64 {
			return tb.C.Reg.Breakdown(entity, now, freq)
		}
		return []cellResult{{
			rows:    assembleRows(figure, vread, scenario, spanBD),
			regRows: assembleRows(figure, vread, scenario, regBD),
		}}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, c := range res {
		rows = append(rows, c.rows...)
		regRows = append(regRows, c.regRows...)
	}
	return rows, regRows, nil
}

// assembleRows maps per-entity breakdowns onto the figure's two bars. Under
// vRead the daemons' host-side work joins the side they serve: the client's
// host daemon handles requests/completions, the remote host's daemon does
// the datanode's reading.
func assembleRows(figure string, vread bool, scenario Scenario, bd func(entity string) map[string]float64) []BreakdownRow {
	clientBD := bd("client")
	var dnBD map[string]float64
	if vread {
		if scenario == Remote {
			merge(clientBD, bd(core.DaemonEntity("host1")))
			dnBD = bd(core.DaemonEntity("host2"))
		} else {
			dnBD = bd(core.DaemonEntity("host1"))
		}
	} else {
		dn := "dn1"
		if scenario == Remote {
			dn = "dn2"
		}
		dnBD = bd(dn)
	}
	return []BreakdownRow{
		{Figure: figure, Side: "client", System: sysName(vread), Breakdown: clientBD},
		{Figure: figure, Side: "datanode", System: sysName(vread), Breakdown: dnBD},
	}
}

// spanBreakdown converts one entity's trace-derived cycle charges into the
// same per-tag utilization map Registry.Breakdown produces, folding the
// scheduler-injected cycles (request-unattributable by construction, see
// Registry.AddSchedCycles) back into "others".
func spanBreakdown(reg *metrics.Registry, cyc map[string]map[string]int64, entity string, elapsed time.Duration, freqHz int64) map[string]float64 {
	out := make(map[string]float64)
	if elapsed <= 0 {
		return out
	}
	denom := float64(freqHz) * elapsed.Seconds()
	for tag, n := range cyc[entity] {
		if n > 0 {
			out[tag] += float64(n) / denom
		}
	}
	if s := reg.WindowSchedCycles(entity); s > 0 {
		out[metrics.TagOthers] += float64(s) / denom
	}
	return out
}

func merge(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// FormatBreakdownRows renders rows for CLI/bench output.
func FormatBreakdownRows(rows []BreakdownRow) string {
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%s %-9s %-8s total %5.1f%%\n", r.Figure, r.Side, r.System, r.Total()*100)
		out += metrics.FormatBreakdown(r.Breakdown)
	}
	return out
}
