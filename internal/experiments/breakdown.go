package experiments

import (
	"fmt"
	"io"
	"time"

	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// BreakdownRow is one stacked bar of Figures 6, 7 or 8: the per-tag CPU
// utilization of one side (client or datanode) under one system.
type BreakdownRow struct {
	Figure    string             // "fig6" | "fig7" | "fig8"
	Side      string             // "client" | "datanode"
	System    string             // "vanilla" | "vRead"
	Breakdown map[string]float64 // tag → fraction of one core
}

// Total returns the bar height (entity utilization, 0..1 of a core).
func (r BreakdownRow) Total() float64 {
	var t float64
	for _, v := range r.Breakdown {
		t += v
	}
	return t
}

// RunFig6 reproduces Figure 6: CPU utilization of a co-located 1 GB read
// with 1 MB requests, vanilla vs vRead, broken down by the paper's tags.
func RunFig6(opt Options) ([]BreakdownRow, error) {
	return runBreakdown(opt, "fig6", Colocated, core.TransportRDMA)
}

// RunFig7 reproduces Figure 7: the remote read with RDMA daemons.
func RunFig7(opt Options) ([]BreakdownRow, error) {
	return runBreakdown(opt, "fig7", Remote, core.TransportRDMA)
}

// RunFig8 reproduces Figure 8: the remote read with TCP daemons.
func RunFig8(opt Options) ([]BreakdownRow, error) {
	return runBreakdown(opt, "fig8", Remote, core.TransportTCP)
}

func runBreakdown(opt Options, figure string, scenario Scenario, tr core.Transport) ([]BreakdownRow, error) {
	opt = opt.withDefaults()
	opt.ExtraVMs = false
	opt.Transport = tr
	var rows []BreakdownRow
	for _, vread := range []bool{true, false} {
		o := opt
		o.VRead = vread
		tb := NewTestbed(o)
		tb.Place(scenario)
		fileSize := o.scaled(1<<30, 64<<20)
		const path = "/bench/breakdown"
		if err := tb.Run(figure+"-setup", time.Hour, func(p *sim.Proc) error {
			return tb.Client.WriteFile(p, path, data.Pattern{Seed: 6, Size: fileSize})
		}); err != nil {
			tb.Close()
			return nil, err
		}
		if err := tb.Run(figure+"-read", time.Hour, func(p *sim.Proc) error {
			tb.DropAllCaches()
			tb.C.Reg.MarkWindow(tb.C.Env.Now())
			r, err := tb.Client.Open(p, path)
			if err != nil {
				return err
			}
			defer r.Close(p)
			for {
				if _, err := r.Read(p, 1<<20); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		}); err != nil {
			tb.Close()
			return nil, err
		}

		now := tb.C.Env.Now()
		freq := tb.Opt.FreqHz
		clientBD := tb.C.Reg.Breakdown("client", now, freq)
		var dnBD map[string]float64
		if vread {
			if scenario == Remote {
				// Client side also includes its host's daemon (request +
				// completion work); datanode side is the remote daemon.
				merge(clientBD, tb.C.Reg.Breakdown(core.DaemonEntity("host1"), now, freq))
				dnBD = tb.C.Reg.Breakdown(core.DaemonEntity("host2"), now, freq)
			} else {
				dnBD = tb.C.Reg.Breakdown(core.DaemonEntity("host1"), now, freq)
			}
		} else {
			dn := "dn1"
			if scenario == Remote {
				dn = "dn2"
			}
			dnBD = tb.C.Reg.Breakdown(dn, now, freq)
		}
		rows = append(rows,
			BreakdownRow{Figure: figure, Side: "client", System: sysName(vread), Breakdown: clientBD},
			BreakdownRow{Figure: figure, Side: "datanode", System: sysName(vread), Breakdown: dnBD},
		)
		tb.Close()
	}
	return rows, nil
}

func merge(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// FormatBreakdownRows renders rows for CLI/bench output.
func FormatBreakdownRows(rows []BreakdownRow) string {
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%s %-9s %-8s total %5.1f%%\n", r.Figure, r.Side, r.System, r.Total()*100)
		out += metrics.FormatBreakdown(r.Breakdown)
	}
	return out
}
