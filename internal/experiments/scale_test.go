package experiments

import (
	"strings"
	"testing"

	"vread/internal/faults"
)

// TestScaleSmoke runs the default small federation at one QPS level and
// checks SLO rows come back sane.
func TestScaleSmoke(t *testing.T) {
	rows, err := RunScale(Options{Seed: 1, VRead: true}, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 steady row, got %d: %v", len(rows), rows)
	}
	r := rows[0]
	if r.Phase != "steady" || r.OKs == 0 || r.P50us <= 0 || r.P99us < r.P50us {
		t.Fatalf("implausible SLO row: %+v", r)
	}
}

// TestScaleSerialParallelIdentity checks the determinism contract: the same
// (seed, config) must render byte-identical SLO rows whether the QPS cells
// run serially or fanned out across workers.
func TestScaleSerialParallelIdentity(t *testing.T) {
	sc := ScaleConfig{
		QPSLevels: []float64{1000, 4000},
		Reads:     40,
		KillRack:  "d0r0",
	}
	spec, err := faults.ParseSpec("rack.kill:after=20,max=1;shard.kill:p=0.03")
	if err != nil {
		t.Fatal(err)
	}
	serialRows, err := RunScale(Options{Seed: 5, Faults: spec, Parallel: 1}, sc)
	if err != nil {
		t.Fatal(err)
	}
	parallelRows, err := RunScale(Options{Seed: 5, Faults: spec, Parallel: 8}, sc)
	if err != nil {
		t.Fatal(err)
	}
	serial, parallel := RenderSLORows(serialRows), RenderSLORows(parallelRows)
	if serial != parallel {
		t.Fatalf("serial and parallel runs diverged:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "degraded") {
		t.Fatalf("rack kill produced no degraded phase:\n%s", serial)
	}
}

// TestScaleDatacenter is the acceptance shape: 1000 hosts across 4 fault
// domains, a 4-shard federated namespace at replication 3, and a full rack
// killed mid-storm. The run must complete with the chaos invariants intact
// (RunScale returns an error on any violation) and reads surviving the kill
// through replica failover.
func TestScaleDatacenter(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-host federation build is not short")
	}
	spec, err := faults.ParseSpec("rack.kill:after=20,max=1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunScale(Options{Seed: 2, Faults: spec}, ScaleConfig{
		Domains:        4,
		RacksPerDomain: 10,
		HostsPerRack:   25, // 4 × 10 × 25 = 1000 hosts
		Shards:         4,
		Replication:    3,
		Datanodes:      12,
		Clients:        4,
		Reads:          50,
		KillRack:       "d0r0",
	})
	if err != nil {
		t.Fatal(err)
	}
	var steady, degraded *SLORow
	for i := range rows {
		switch rows[i].Phase {
		case "steady":
			steady = &rows[i]
		case "degraded":
			degraded = &rows[i]
		}
	}
	if steady == nil || degraded == nil {
		t.Fatalf("want steady and degraded rows, got %v", rows)
	}
	if steady.OKs == 0 || degraded.OKs == 0 {
		t.Fatalf("reads did not survive the rack kill: steady=%+v degraded=%+v", steady, degraded)
	}
}
