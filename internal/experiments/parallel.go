package experiments

import (
	"vread/internal/par"
	"vread/internal/trace"
)

// RunStats accumulates engine-level totals across every testbed an
// experiment builds. It is safe to share one RunStats across concurrently
// running cells (the counter inside is par.Counter) and across several Run*
// calls — the bench harness uses that to report simulated-events/sec for a
// whole grid.
type RunStats struct {
	events par.Counter
}

// addEvents is called by Testbed.Close with the cell Env's fired-event count.
func (s *RunStats) addEvents(n int64) {
	if s != nil {
		s.events.Add(n)
	}
}

// Events returns the total simulated events executed so far.
func (s *RunStats) Events() int64 {
	if s == nil {
		return 0
	}
	return s.events.Load()
}

// runCells runs n independent experiment cells — each with its own testbed,
// Env, and RNG — across par.Workers(opt.Parallel, n) OS threads and returns
// the cells' rows concatenated in cell-index order.
//
// Determinism: a cell's result depends only on (i, o), never on which worker
// ran it or when, because every cell builds its state from scratch off the
// seed. Collecting by index therefore makes the output bit-for-bit identical
// to a serial run. Trace collection gets the same treatment: when the caller
// passed a shared collector, each cell traces into a private one and the
// privates are absorbed in cell order afterwards, reproducing exactly the
// trace IDs a serial run would have assigned.
func runCells[T any](opt Options, n int, run func(i int, o Options) ([]T, error)) ([]T, error) {
	workers := par.Workers(opt.Parallel, n)
	var cols []*trace.Collector
	if opt.Traces != nil {
		cols = make([]*trace.Collector, n)
		for i := range cols {
			cols[i] = &trace.Collector{}
		}
	}
	results := make([][]T, n)
	err := par.Each(workers, n, func(i int) error {
		o := opt
		if cols != nil {
			o.Traces = cols[i]
		}
		rows, err := run(i, o)
		if err != nil {
			return err
		}
		results[i] = rows
		return nil
	})
	// Absorb even when a cell failed: Each has already joined every worker,
	// and cells that completed produced traces a serial run would have left
	// in the caller's collector. Failed or never-started cells contribute an
	// empty (or partial, like serial's failing cell) collector.
	for _, c := range cols {
		opt.Traces.Absorb(c)
	}
	if err != nil {
		return nil, err
	}
	var out []T
	for _, rows := range results {
		out = append(out, rows...)
	}
	return out, nil
}
