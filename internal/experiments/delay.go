package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// ReqSizes is the request-size sweep of Figures 2 and 9.
var ReqSizes = []int64{64 << 10, 1 << 20, 4 << 20}

// hdfsDelayStats reads the whole file sequentially with the given request
// size, recording every request's latency.
func hdfsDelayStats(p *sim.Proc, tb *Testbed, path string, reqSize int64) (*metrics.LatencyRecorder, error) {
	r, err := tb.Client.Open(p, path)
	if err != nil {
		return nil, err
	}
	defer r.Close(p)
	env := tb.C.Env
	rec := metrics.NewLatencyRecorder()
	for {
		start := env.Now()
		if _, err := r.Read(p, reqSize); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
		rec.Record(env.Now() - start)
	}
	if rec.Count() == 0 {
		return nil, fmt.Errorf("experiments: empty file %s", path)
	}
	return rec, nil
}

// hdfsMeanDelay is hdfsDelayStats reduced to the mean (what the paper's
// bars plot).
func hdfsMeanDelay(p *sim.Proc, tb *Testbed, path string, reqSize int64) (time.Duration, error) {
	rec, err := hdfsDelayStats(p, tb, path, reqSize)
	if err != nil {
		return 0, err
	}
	return rec.Mean(), nil
}

// localMeanDelay reads a file in the VM's own file system with the given
// request size — the paper's local-read baseline (2 copies).
func localMeanDelay(p *sim.Proc, k *guest.Kernel, path string, reqSize int64) (time.Duration, error) {
	node, err := k.FS().Stat(path)
	if err != nil {
		return 0, err
	}
	env := k.Env()
	start := env.Now()
	var requests int64
	for off := int64(0); off < node.Size(); off += reqSize {
		n := node.Size() - off
		if n > reqSize {
			n = reqSize
		}
		if _, err := k.ReadFileAt(p, path, off, n); err != nil {
			return 0, err
		}
		requests++
	}
	return (env.Now() - start) / time.Duration(requests), nil
}

// Fig2Row is one bar pair of Figure 2: HDFS-from-co-located-VM vs local-FS
// read delay at one request size and cache state.
type Fig2Row struct {
	ReqSize int64
	Cached  bool
	InterVM time.Duration
	Local   time.Duration
}

// RunFig2 reproduces Figure 2: the motivation experiment. A plain (vanilla)
// testbed; a 1 GB file read through the co-located datanode VM versus the
// same file in the client VM's own file system.
//
// Each cell builds its own testbed (setup writes included) so cells are
// independent and can run in parallel. Cell values therefore differ from the
// old shared-testbed serial sweep — no RNG or cache state carries between
// cells — but each cell is a cleaner measurement for it, and serial vs
// parallel runs of this implementation stay byte-identical.
func RunFig2(opt Options) ([]Fig2Row, error) {
	opt = opt.withDefaults()
	opt.VRead = false
	opt.ExtraVMs = false
	type cell struct {
		cached bool
		req    int64
	}
	var cells []cell
	for _, cached := range []bool{false, true} {
		for _, req := range ReqSizes {
			cells = append(cells, cell{cached, req})
		}
	}
	return runCells(opt, len(cells), func(i int, o Options) ([]Fig2Row, error) {
		cached, req := cells[i].cached, cells[i].req
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(Colocated)

		fileSize := o.scaled(1<<30, 64<<20)
		content := data.Pattern{Seed: 2, Size: fileSize}
		const hdfsPath = "/bench/fig2"
		const localPath = "/local/fig2"
		if err := tb.Run("fig2-setup", time.Hour, func(p *sim.Proc) error {
			if err := tb.Client.WriteFile(p, hdfsPath, content); err != nil {
				return err
			}
			clientVM := tb.C.VM("client")
			if err := clientVM.FS.MkdirAll("/local"); err != nil {
				return err
			}
			return clientVM.FS.WriteFile(localPath, content)
		}); err != nil {
			return nil, err
		}

		row := Fig2Row{ReqSize: req, Cached: cached}
		if err := tb.Run(fmt.Sprintf("fig2-%d-%v", req, cached), time.Hour, func(p *sim.Proc) error {
			tb.DropAllCaches()
			if cached {
				// Warm pass establishes the caches the re-read hits.
				if _, err := hdfsMeanDelay(p, tb, hdfsPath, req); err != nil {
					return err
				}
				if _, err := localMeanDelay(p, tb.C.VM("client").Kernel, localPath, req); err != nil {
					return err
				}
			}
			var err error
			if row.InterVM, err = hdfsMeanDelay(p, tb, hdfsPath, req); err != nil {
				return err
			}
			row.Local, err = localMeanDelay(p, tb.C.VM("client").Kernel, localPath, req)
			return err
		}); err != nil {
			return nil, err
		}
		return []Fig2Row{row}, nil
	})
}

// Fig9Row is one bar group of Figure 9: vanilla vs vRead co-located read
// delay at one request size, VM count, and cache state.
type Fig9Row struct {
	ReqSize    int64
	VMs        int
	Cached     bool
	Vanilla    time.Duration
	VRead      time.Duration
	VanillaP99 time.Duration // tail latency (beyond the paper's means)
	VReadP99   time.Duration
}

// RunFig9 reproduces Figure 9: the data-access-delay reduction. One vRead
// testbed per cell; the vanilla numbers come from the same testbed with the
// block reader uninstalled, so both read the same blocks. As with RunFig2,
// per-cell testbeds mean values differ from the old shared-testbed sweep
// (intentional: it is what makes cells independent and parallelizable).
func RunFig9(opt Options) ([]Fig9Row, error) {
	opt = opt.withDefaults()
	type cell struct {
		vms    int
		cached bool
		req    int64
	}
	var cells []cell
	for _, vms := range []int{2, 4} {
		for _, cached := range []bool{false, true} {
			for _, req := range ReqSizes {
				cells = append(cells, cell{vms, cached, req})
			}
		}
	}
	return runCells(opt, len(cells), func(i int, o Options) ([]Fig9Row, error) {
		vms, cached, req := cells[i].vms, cells[i].cached, cells[i].req
		o.VRead = true
		o.ExtraVMs = vms == 4
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(Colocated)
		fileSize := o.scaled(1<<30, 64<<20)
		const path = "/bench/fig9"
		if err := tb.Run("fig9-setup", time.Hour, func(p *sim.Proc) error {
			return tb.Client.WriteFile(p, path, data.Pattern{Seed: 9, Size: fileSize})
		}); err != nil {
			return nil, err
		}
		row := Fig9Row{ReqSize: req, VMs: vms, Cached: cached}
		for _, vread := range []bool{false, true} {
			if vread {
				tb.Client.SetBlockReader(tb.Lib)
			} else {
				tb.Client.SetBlockReader(nil)
			}
			var rec *metrics.LatencyRecorder
			if err := tb.Run(fmt.Sprintf("fig9-%d-%d-%v-%v", vms, req, cached, vread), time.Hour, func(p *sim.Proc) error {
				tb.DropAllCaches()
				if cached {
					if _, err := hdfsMeanDelay(p, tb, path, req); err != nil {
						return err
					}
				}
				var err error
				rec, err = hdfsDelayStats(p, tb, path, req)
				return err
			}); err != nil {
				return nil, err
			}
			if vread {
				row.VRead = rec.Mean()
				row.VReadP99 = rec.Percentile(99)
			} else {
				row.Vanilla = rec.Mean()
				row.VanillaP99 = rec.Percentile(99)
			}
		}
		return []Fig9Row{row}, nil
	})
}
