package experiments

import (
	"strings"
	"testing"

	"vread/internal/core"
)

func TestParseOptionsFull(t *testing.T) {
	raw := []byte(`{
		"seed": 9,
		"freq_ghz": 3.2,
		"extra_vms": true,
		"vread": true,
		"transport": "tcp",
		"sriov": true,
		"scale": 0.5,
		"block_size_mb": 32,
		"scenario": "hybrid"
	}`)
	opt, scenario, err := ParseOptions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Seed != 9 || opt.FreqHz != 3_200_000_000 || !opt.ExtraVMs || !opt.VRead {
		t.Fatalf("opt = %+v", opt)
	}
	if opt.Transport != core.TransportTCP || !opt.SRIOV {
		t.Fatalf("opt = %+v", opt)
	}
	if opt.Scale != 0.5 || opt.BlockSize != 32<<20 {
		t.Fatalf("opt = %+v", opt)
	}
	if scenario != Hybrid {
		t.Fatalf("scenario = %v", scenario)
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	opt, scenario, err := ParseOptions([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Transport != core.TransportRDMA || scenario != Colocated {
		t.Fatalf("defaults wrong: %+v %v", opt, scenario)
	}
	// The zero values defer to Options.withDefaults downstream.
	o := opt.withDefaults()
	if o.Seed != 1 || o.FreqHz != 2_000_000_000 {
		t.Fatalf("withDefaults = %+v", o)
	}
}

func TestParseOptionsRejectsUnknownFields(t *testing.T) {
	_, _, err := ParseOptions([]byte(`{"sead": 9}`))
	if err == nil || !strings.Contains(err.Error(), "sead") {
		t.Fatalf("typo not rejected: %v", err)
	}
}

func TestParseOptionsRejectsBadEnums(t *testing.T) {
	if _, _, err := ParseOptions([]byte(`{"transport": "carrier-pigeon"}`)); err == nil {
		t.Fatal("bad transport accepted")
	}
	if _, _, err := ParseOptions([]byte(`{"scenario": "somewhere"}`)); err == nil {
		t.Fatal("bad scenario accepted")
	}
}

func TestParseOptionsMalformedJSON(t *testing.T) {
	for _, raw := range []string{
		``,                  // empty file
		`{`,                 // truncated
		`{"seed": }`,        // syntax error
		`{"seed": "nine"}`,  // wrong type
		`[1, 2, 3]`,         // wrong shape
		`{"freq_ghz": 2.0,`, // unterminated object
	} {
		_, _, err := ParseOptions([]byte(raw))
		if err == nil {
			t.Errorf("ParseOptions(%q) accepted malformed input", raw)
			continue
		}
		if !strings.Contains(err.Error(), "bad scenario config") {
			t.Errorf("ParseOptions(%q) error %q lacks context", raw, err)
		}
	}
}

func TestParseScaleOptions(t *testing.T) {
	raw := []byte(`{
		"seed": 3,
		"shards": 4,
		"replication": 3,
		"faults": "rack.kill:after=5,max=1",
		"scale_out": {
			"domains": 4,
			"racks_per_domain": 10,
			"hosts_per_rack": 25,
			"datanodes": 12,
			"clients": 4,
			"files": 8,
			"file_kb": 256,
			"qps": [1000, 4000],
			"reads": 60,
			"kill_rack": "d0r0"
		}
	}`)
	opt, sc, scaleOut, err := ParseScaleOptions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !scaleOut {
		t.Fatal("scale_out block not detected")
	}
	if opt.Seed != 3 || opt.Shards != 4 || opt.Replication != 3 || opt.Faults == nil {
		t.Fatalf("opt = %+v", opt)
	}
	if sc.Domains != 4 || sc.RacksPerDomain != 10 || sc.HostsPerRack != 25 {
		t.Fatalf("topology = %+v", sc)
	}
	if sc.Shards != 4 || sc.Replication != 3 || sc.Datanodes != 12 || sc.Clients != 4 {
		t.Fatalf("sc = %+v", sc)
	}
	if sc.Files != 8 || sc.FileSize != 256<<10 || sc.Reads != 60 || sc.KillRack != "d0r0" {
		t.Fatalf("sc = %+v", sc)
	}
	if len(sc.QPSLevels) != 2 || sc.QPSLevels[0] != 1000 || sc.QPSLevels[1] != 4000 {
		t.Fatalf("qps = %v", sc.QPSLevels)
	}
}

func TestParseScaleOptionsAbsent(t *testing.T) {
	_, _, scaleOut, err := ParseScaleOptions([]byte(`{"seed": 2, "vread": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if scaleOut {
		t.Fatal("scale_out detected in a figure-testbed scenario")
	}
}

func TestParseScaleOptionsRejectsTypos(t *testing.T) {
	_, _, _, err := ParseScaleOptions([]byte(`{"scale_out": {"domains": 2}, "sead": 1}`))
	if err == nil || !strings.Contains(err.Error(), "sead") {
		t.Fatalf("typo not rejected: %v", err)
	}
}
