// Package experiments reproduces every figure and table of the paper's
// evaluation (§5). Each Run* function builds the corresponding testbed
// (Figure 10's shape), runs the workload, and returns typed rows that the
// bench harness and CLI print next to the paper's reported values.
//
// Dataset sizes scale with Options.Scale (1.0 = paper sizes: 1 GB micro
// reads, 5 GB TestDFSIO, 5 M HBase rows, 30 M Hive rows). The default used
// by the benches is 0.05 so the whole suite runs in minutes; shapes are
// stable across scales because every cache is scaled by the same hardware
// constants the paper's testbed had.
package experiments

import (
	"fmt"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/mapred"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
	"vread/internal/workload"
)

// Scenario places block replicas relative to the reading client.
type Scenario int

// Scenarios of §5.2.
const (
	Colocated Scenario = iota // all blocks on the same-host datanode
	Remote                    // all blocks on the other host's datanode
	Hybrid                    // blocks alternate between the two
)

func (s Scenario) String() string {
	switch s {
	case Colocated:
		return "co-located"
	case Remote:
		return "remote"
	default:
		return "hybrid"
	}
}

// Options configures one testbed build.
type Options struct {
	// Seed drives all determinism. Default 1.
	Seed int64
	// FreqHz is the host clock (the paper sweeps 1.6/2.0/3.2 GHz).
	// Default 2.0 GHz.
	FreqHz int64
	// ExtraVMs adds the 85% lookbusy background VMs (the "4 VMs"
	// scenarios): 2 on host1, 3 on host2, per Figure 10.
	ExtraVMs bool
	// VRead enables the vRead system and installs libvread on the client.
	VRead bool
	// Transport selects the remote daemon transport (RDMA default).
	Transport core.Transport
	// DirectDiskBypass enables §6's host-FS bypass ablation.
	DirectDiskBypass bool
	// SharedMemNet enables the §2.2 shared-memory networking comparator.
	SharedMemNet bool
	// SRIOV gives every VM a passthrough NIC virtual function (§6's
	// modern-hardware interplay).
	SRIOV bool
	// ShortCircuit enables HDFS-2246 short-circuit local reads.
	ShortCircuit bool
	// Shards federates the namespace behind a router when > 1: paths hash
	// (or mount) onto Shards namenode shards and placement moves to the
	// consistent-hash ring (see internal/hdfs/federation.go).
	Shards int
	// Replication is the write-pipeline depth (default 1; the two-host
	// testbed supports up to 2).
	Replication int
	// Scale multiplies paper dataset sizes. Default 0.05.
	Scale float64
	// BlockSize overrides the HDFS block size (default 64 MiB, shrunk
	// automatically when the scaled file would have fewer than 2 blocks).
	BlockSize int64
	// VReadConfig overrides vRead parameters (ring ablations).
	VReadConfig *core.Config
	// Faults arms deterministic fault injection across the testbed (disk,
	// fabric, ring, daemon). The plan draws from the testbed's seeded RNG,
	// so a (Seed, Faults) pair replays identically.
	Faults faults.Spec
	// Traces, when non-nil, installs a request tracer on the testbed's
	// clients; sampled request traces accumulate here (shared across the
	// testbeds an experiment builds).
	Traces *trace.Collector
	// TraceEvery samples every Nth request (<= 1 traces all). Only
	// meaningful with Traces set.
	TraceEvery int
	// Parallel caps how many independent experiment cells (grid points,
	// ablation variants — each a whole testbed) run concurrently: 0 means
	// one per CPU, 1 forces the serial path. Results are collected by cell
	// index, so parallel runs produce byte-identical rows, CSVs and traces
	// to serial ones.
	Parallel int
	// Stats, when non-nil, accumulates engine totals (simulated event
	// counts) across every testbed the experiment builds, including
	// concurrent ones.
	Stats *RunStats
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FreqHz == 0 {
		o.FreqHz = 2_000_000_000
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	return o
}

// scaled applies the dataset scale with a floor.
func (o Options) scaled(bytes int64, floor int64) int64 {
	v := int64(float64(bytes) * o.Scale)
	if v < floor {
		v = floor
	}
	return v
}

// Testbed is one built instance of Figure 10.
type Testbed struct {
	Opt Options
	C   *cluster.Cluster
	// NS is the namespace every component talks to: the NameNode for the
	// classic single-namespace testbed, the federation Router when
	// Options.Shards > 1.
	NS hdfs.Namespace
	// NN is the standalone namenode (nil when federated — use NS).
	NN *hdfs.NameNode
	// Router is the federation router (nil unless Options.Shards > 1).
	Router  *hdfs.Router
	DN1     *hdfs.DataNode // co-located with the client (host1)
	DN2     *hdfs.DataNode // remote (host2)
	Client  *hdfs.Client
	Engine  *mapred.Engine
	Tracker *mapred.Tracker
	Mgr     *core.Manager // nil without vRead
	Lib     *core.Lib
	Tracer  *trace.Tracer // nil unless Options.Traces was set
	Faults  *faults.Plan  // nil unless Options.Faults was set
	closed  bool
}

// NewTestbed builds the two-host testbed: client(+namenode) VM and dn1 on
// host1, dn2 on host2, plus lookbusy VMs when ExtraVMs is set.
func NewTestbed(opt Options) *Testbed {
	opt = opt.withDefaults()
	params := cluster.Params{FreqHz: opt.FreqHz}
	params.Virtio.SharedMemNet = opt.SharedMemNet
	params.Virtio.SRIOV = opt.SRIOV
	c := cluster.New(opt.Seed, params)
	// The two hosts sit in distinct racks and fault domains, so replicated
	// writes through the federation ring spread across both.
	h1 := c.AddHostAt("host1", "r0", "d0")
	h2 := c.AddHostAt("host2", "r1", "d1")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)
	if opt.ExtraVMs {
		for i, host := range []*cluster.Host{h1, h1, h2, h2, h2} {
			hog := host.AddVM(fmt.Sprintf("hog%d", i), metrics.TagClientApp)
			workload.StartLookbusy(hog, 0.85, 0)
		}
	}

	hcfg := hdfs.Config{ShortCircuit: opt.ShortCircuit, Replication: opt.Replication}
	if opt.BlockSize != 0 {
		hcfg.BlockSize = opt.BlockSize
	}
	var ns hdfs.Namespace
	var nn *hdfs.NameNode
	var router *hdfs.Router
	if opt.Shards > 1 {
		router = hdfs.NewRouter(c.Env, hcfg, c.Fabric, hdfs.RouterOptions{
			Shards:   opt.Shards,
			RingSeed: opt.Seed,
		})
		ns = router
	} else {
		nn = hdfs.NewNameNode(c.Env, hcfg, c.Fabric)
		ns = nn
	}
	dn1 := hdfs.StartDataNode(c.Env, ns, dn1VM.Kernel)
	dn2 := hdfs.StartDataNode(c.Env, ns, dn2VM.Kernel)
	client := hdfs.NewClient(c.Env, ns, clientVM.Kernel)
	engine := mapred.NewEngine(c.Env, mapred.Config{})
	tracker := engine.AddTracker(clientVM.Kernel, client)

	tb := &Testbed{
		Opt: opt, C: c, NS: ns, NN: nn, Router: router, DN1: dn1, DN2: dn2,
		Client: client, Engine: engine, Tracker: tracker,
	}
	if opt.Traces != nil {
		tb.Tracer = trace.NewTracerInto(c.Env, opt.TraceEvery, opt.Traces)
		client.SetTracer(tb.Tracer)
	}
	if len(opt.Faults) > 0 {
		tb.Faults = opt.Faults.Plan(c.Env)
		c.InjectFaults(tb.Faults)
		c.Fabric.InjectFaults(tb.Faults)
		h1.Disk.InjectFaults(tb.Faults)
		h2.Disk.InjectFaults(tb.Faults)
		if router != nil {
			router.InjectFaults(tb.Faults)
		}
	}
	if opt.VRead {
		vcfg := core.Config{Transport: opt.Transport, DirectDiskBypass: opt.DirectDiskBypass}
		if opt.VReadConfig != nil {
			vcfg = *opt.VReadConfig
			vcfg.Transport = opt.Transport
			vcfg.DirectDiskBypass = opt.DirectDiskBypass
		}
		vcfg.Faults = tb.Faults
		tb.Mgr = core.NewManager(c, ns, vcfg)
		tb.Mgr.MountDatanode("dn1")
		tb.Mgr.MountDatanode("dn2")
		tb.Lib = tb.Mgr.EnableClient("client")
		client.SetBlockReader(tb.Lib)
	}
	return tb
}

// Place sets the namenode placement policy for the scenario.
func (tb *Testbed) Place(s Scenario) {
	n := 0
	tb.NS.SetPlacementPolicy(func(clientVM, _ string, replication int) []string {
		switch s {
		case Colocated:
			return []string{"dn1"}
		case Remote:
			return []string{"dn2"}
		default:
			n++
			if n%2 == 1 {
				return []string{"dn1"}
			}
			return []string{"dn2"}
		}
	})
}

// Run drives fn as a simulated process and fails with an error if it does
// not complete within the (virtual) deadline.
func (tb *Testbed) Run(name string, deadline time.Duration, fn func(p *sim.Proc) error) error {
	done := false
	var ferr error
	tb.C.Go(name, func(p *sim.Proc) {
		ferr = fn(p)
		done = true
		// Freeze the clock at completion so post-run utilization windows
		// measure the workload, not idle tail time.
		tb.C.Env.Stop()
	})
	if err := tb.C.Env.RunUntil(tb.C.Env.Now() + deadline); err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	if !done {
		return fmt.Errorf("experiments: %s did not finish within %v (virtual)", name, deadline)
	}
	return ferr
}

// DropAllCaches empties every guest and host cache (the experiments' cold
// start between runs).
func (tb *Testbed) DropAllCaches() {
	for _, vm := range tb.C.AllVMs() {
		vm.Kernel.DropCaches()
	}
	tb.C.Host("host1").Cache.DropAll()
	tb.C.Host("host2").Cache.DropAll()
}

// Close shuts the testbed down, harvesting the Env's fired-event total into
// Options.Stats. Idempotent, so error paths may close eagerly.
func (tb *Testbed) Close() {
	if tb.closed {
		return
	}
	tb.closed = true
	tb.Opt.Stats.addEvents(int64(tb.C.Env.Fired()))
	tb.C.Close()
}

// sysName labels a config for output rows.
func sysName(vread bool) string {
	if vread {
		return "vRead"
	}
	return "vanilla"
}

// GHz formats a frequency like the paper's axes.
func GHz(freqHz int64) string {
	return fmt.Sprintf("%.1fGHz", float64(freqHz)/1e9)
}

// PaperFreqs is the paper's cpufreq sweep.
var PaperFreqs = []int64{1_600_000_000, 2_000_000_000, 3_200_000_000}
