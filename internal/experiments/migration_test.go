package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// smallMigration keeps the sweep cheap enough for -race while still putting
// several streams in flight across the cutover.
func smallMigration() MigrationConfig {
	return MigrationConfig{
		Seed:           7,
		Depths:         []int{1, 3},
		ReadsPerStream: 6,
		FileSize:       1 << 20,
		ReadSize:       64 << 10,
		TriggerAfter:   500 * time.Microsecond,
	}
}

// TestMigrationSweepSmoke: every cell completes with zero lost or corrupted
// reads (RunMigrationSweep errors otherwise), a finite blackout, and every
// ring quiesced across the cutover.
func TestMigrationSweepSmoke(t *testing.T) {
	mc := smallMigration()
	rows, err := RunMigrationSweep(Options{Seed: 7}, mc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(mc.Depths) {
		t.Fatalf("got %d rows, want %d", len(rows), len(mc.Depths))
	}
	for i, r := range rows {
		if r.Depth != mc.Depths[i] {
			t.Errorf("row %d: depth %d, want %d", i, r.Depth, mc.Depths[i])
		}
		if r.Blackout <= 0 {
			t.Errorf("depth %d: blackout %v, want finite positive window", r.Depth, r.Blackout)
		}
		if r.Reads != r.Depth*mc.ReadsPerStream {
			t.Errorf("depth %d: %d reads completed, want %d", r.Depth, r.Reads, r.Depth*mc.ReadsPerStream)
		}
		if r.WorstIn <= r.WorstOut {
			t.Errorf("depth %d: worst in-blackout latency %v not above baseline %v",
				r.Depth, r.WorstIn, r.WorstOut)
		}
		if r.Fingerprint == 0 {
			t.Errorf("depth %d: empty fingerprint", r.Depth)
		}
	}
}

// TestMigrationSerialParallelIdentity: the sweep's rows — blackouts, captured
// counts, and fingerprints included — are byte-identical whether cells run
// serially or fanned out, so a (seed, config) pair names one exact result.
func TestMigrationSerialParallelIdentity(t *testing.T) {
	mc := smallMigration()
	serial, err := RunMigrationSweep(Options{Seed: 7, Parallel: 1}, mc)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMigrationSweep(Options{Seed: 7, Parallel: 8}, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel rows differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if CSVMigration(serial) != CSVMigration(parallel) {
		t.Fatal("serial and parallel CSV exports differ")
	}
}

func TestCSVMigrationShape(t *testing.T) {
	rows := []MigrationRow{{Depth: 2, Reads: 12, Fingerprint: 0xabc}}
	csv := CSVMigration(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "depth,blackout_ms,") {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.Contains(lines[1], "0000000000000abc") {
		t.Fatalf("fingerprint missing from %q", lines[1])
	}
}
