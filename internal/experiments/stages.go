package experiments

import (
	"time"

	"vread/internal/data"
	"vread/internal/sim"
	"vread/internal/trace"
)

// RunDelayStages runs the co-located sequential read of Figure 9 at one
// request size with every request traced, and reduces the trace stream to
// per-stage latency percentiles (p50/p95/p99): where inside the stack the
// delay of Figure 9's bars is spent.
func RunDelayStages(opt Options, reqSize int64, vread bool) ([]trace.StageStat, error) {
	opt = opt.withDefaults()
	col := &trace.Collector{}
	opt.Traces = col
	opt.TraceEvery = 1
	opt.VRead = vread
	opt.ExtraVMs = false
	tb := NewTestbed(opt)
	defer tb.Close()
	tb.Place(Colocated)
	fileSize := opt.scaled(1<<30, 64<<20)
	const path = "/bench/delay-stages"
	if err := tb.Run("delay-stages-setup", time.Hour, func(p *sim.Proc) error {
		return tb.Client.WriteFile(p, path, data.Pattern{Seed: 9, Size: fileSize})
	}); err != nil {
		return nil, err
	}
	if err := tb.Run("delay-stages-read", time.Hour, func(p *sim.Proc) error {
		tb.DropAllCaches()
		_, err := hdfsDelayStats(p, tb, path, reqSize)
		return err
	}); err != nil {
		return nil, err
	}
	return trace.Stages(col.Traces), nil
}

// RunDFSIOStages runs one TestDFSIO point (2 VMs, the given scenario) with
// every read request traced and reduces the stream to per-stage latency
// percentiles — the stage-level view behind Figure 11's throughput bars.
func RunDFSIOStages(opt Options, scenario Scenario, vread bool) ([]trace.StageStat, error) {
	opt = opt.withDefaults()
	col := &trace.Collector{}
	opt.Traces = col
	opt.TraceEvery = 1
	if _, err := runDFSIOOnce(opt, scenario, 2, opt.FreqHz, vread); err != nil {
		return nil, err
	}
	return trace.Stages(col.Traces), nil
}
