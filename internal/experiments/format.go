package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Paper-reported reference values, printed beside measured rows so every
// regeneration shows the reproduction target (EXPERIMENTS.md holds the full
// comparison).
const (
	PaperFig3Drop      = "~20% transaction-rate drop with 2 extra lookbusy VMs"
	PaperFig6Savings   = "~40% client / ~65% datanode CPU savings"
	PaperFig9Reduction = "delay reduced up to 40% (2 VMs) / 50% (4 VMs)"
	PaperFig11Read     = "read throughput +20% (3.2GHz) … +41% (1.6GHz); +65% with 4 VMs"
	PaperFig11ReRead   = "re-read throughput improved up to ~150%"
	PaperFig13Overhead = "write-path refresh overhead negligible"
	PaperTable2        = "Scan +27.3%, SequentialRead +23.6%, RandomRead +17.3%"
	PaperTable3        = "Hive select −21.3%, Sqoop export −11.3%"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FormatFig2 renders Figure 2's rows.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — HDFS-in-co-located-VM vs local FS read delay (ms/request)\n")
	fmt.Fprintf(&b, "%-10s %-8s %12s %12s %8s\n", "request", "cache", "inter-VM", "local", "ratio")
	for _, r := range rows {
		cache := "cold"
		if r.Cached {
			cache = "cached"
		}
		ratio := float64(r.InterVM) / float64(r.Local)
		fmt.Fprintf(&b, "%-10s %-8s %12.3f %12.3f %7.2fx\n", sizeLabel(r.ReqSize), cache, ms(r.InterVM), ms(r.Local), ratio)
	}
	b.WriteString("paper: inter-VM delay significantly higher than local for all cases\n")
	return b.String()
}

// FormatFig3 renders Figure 3's rows.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — netperf TCP_RR transaction rate (per second)\n")
	fmt.Fprintf(&b, "%-10s %8s %12s\n", "request", "VMs", "rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %12.0f\n", sizeLabel(r.ReqSize), r.VMs, r.Rate)
	}
	fmt.Fprintf(&b, "paper: %s\n", PaperFig3Drop)
	return b.String()
}

// FormatBreakdowns renders Figures 6–8 rows with per-tag stacks.
func FormatBreakdowns(title string, rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — CPU utilization breakdown (fraction of one core)\n", title)
	b.WriteString(FormatBreakdownRows(rows))
	fmt.Fprintf(&b, "paper: %s\n", PaperFig6Savings)
	return b.String()
}

// FormatFig9 renders Figure 9's rows.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — co-located HDFS read delay, vanilla vs vRead (ms/request)\n")
	fmt.Fprintf(&b, "%-10s %4s %-8s %12s %12s %10s %12s %12s\n",
		"request", "VMs", "cache", "vanilla", "vRead", "reduction", "vanillaP99", "vReadP99")
	for _, r := range rows {
		cache := "cold"
		if r.Cached {
			cache = "cached"
		}
		red := (1 - float64(r.VRead)/float64(r.Vanilla)) * 100
		fmt.Fprintf(&b, "%-10s %4d %-8s %12.3f %12.3f %9.1f%% %12.3f %12.3f\n",
			sizeLabel(r.ReqSize), r.VMs, cache, ms(r.Vanilla), ms(r.VRead), red,
			ms(r.VanillaP99), ms(r.VReadP99))
	}
	fmt.Fprintf(&b, "paper: %s\n", PaperFig9Reduction)
	return b.String()
}

// FormatDFSIO renders Figures 11 and 12's rows.
func FormatDFSIO(rows []DFSIORow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 11+12 — TestDFSIO throughput (MB/s) and CPU time (ms)\n")
	fmt.Fprintf(&b, "%-11s %4s %-7s %-8s %-8s %10s %10s\n",
		"scenario", "VMs", "freq", "system", "mode", "MB/s", "cpu-ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %4d %-7s %-8s %-8s %10.1f %10.0f\n",
			r.Scenario, r.VMs, GHz(r.FreqHz), r.System, r.Mode, r.Throughput, r.CPUTimeMs)
	}
	fmt.Fprintf(&b, "paper: %s; %s\n", PaperFig11Read, PaperFig11ReRead)
	return b.String()
}

// FormatFig13 renders Figure 13's rows.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 — TestDFSIO write throughput (MB/s)\n")
	fmt.Fprintf(&b, "%-11s %-8s %10s %10s\n", "scenario", "system", "MB/s", "refreshes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-8s %10.1f %10d\n", r.Scenario, r.System, r.Throughput, r.Refreshes)
	}
	fmt.Fprintf(&b, "paper: %s\n", PaperFig13Overhead)
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — HBase PerformanceEvaluation (MB/s)\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %12s\n", "phase", "vanilla", "vRead", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10.2f %10.2f %11.1f%%\n", r.Phase, r.Vanilla, r.VRead, r.Improvement())
	}
	fmt.Fprintf(&b, "paper: %s\n", PaperTable2)
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — query/export completion time\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %12s\n", "workload", "vanilla", "vRead", "reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14s %14s %11.1f%%\n", r.Workload, r.Vanilla.Round(time.Millisecond), r.VRead.Round(time.Millisecond), r.Reduction())
	}
	fmt.Fprintf(&b, "paper: %s\n", PaperTable3)
	return b.String()
}

// FormatAblations renders ablation rows.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations — design-choice sweeps\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-30s %12.2f %s\n", r.Study, r.Config, r.Value, r.Unit)
	}
	return b.String()
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
