package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// CSV export for every experiment row type, so the paper's plots can be
// regenerated with any plotting tool (`vread-bench -csv` writes these).

func writeCSV(header []string, rows [][]string) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return sb.String()
}

func f3(v float64) string        { return strconv.FormatFloat(v, 'f', 3, 64) }
func msS(d time.Duration) string { return f3(ms(d)) }
func boolS(b bool) string        { return strconv.FormatBool(b) }
func intS(v int64) string        { return strconv.FormatInt(v, 10) }

// CSVFig2 renders Figure 2 rows as CSV.
func CSVFig2(rows []Fig2Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{intS(r.ReqSize), boolS(r.Cached), msS(r.InterVM), msS(r.Local)})
	}
	return writeCSV([]string{"request_bytes", "cached", "inter_vm_ms", "local_ms"}, out)
}

// CSVFig3 renders Figure 3 rows as CSV.
func CSVFig3(rows []Fig3Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{intS(r.ReqSize), strconv.Itoa(r.VMs), f3(r.Rate)})
	}
	return writeCSV([]string{"request_bytes", "vms", "transactions_per_sec"}, out)
}

// CSVBreakdowns renders Figures 6–8 rows as long-form CSV (one line per
// tag, ready for stacked-bar plotting).
func CSVBreakdowns(rows []BreakdownRow) string {
	var out [][]string
	for _, r := range rows {
		tags := make([]string, 0, len(r.Breakdown))
		for tag := range r.Breakdown {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			out = append(out, []string{r.Figure, r.Side, r.System, tag, f3(r.Breakdown[tag] * 100)})
		}
	}
	return writeCSV([]string{"figure", "side", "system", "tag", "cpu_pct"}, out)
}

// CSVFig9 renders Figure 9 rows as CSV.
func CSVFig9(rows []Fig9Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			intS(r.ReqSize), strconv.Itoa(r.VMs), boolS(r.Cached),
			msS(r.Vanilla), msS(r.VRead), msS(r.VanillaP99), msS(r.VReadP99),
		})
	}
	return writeCSV([]string{"request_bytes", "vms", "cached", "vanilla_ms", "vread_ms", "vanilla_p99_ms", "vread_p99_ms"}, out)
}

// CSVDFSIO renders Figures 11/12 rows as CSV.
func CSVDFSIO(rows []DFSIORow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scenario.String(), strconv.Itoa(r.VMs), fmt.Sprintf("%.1f", float64(r.FreqHz)/1e9),
			r.System, r.Mode, f3(r.Throughput), f3(r.CPUTimeMs),
		})
	}
	return writeCSV([]string{"scenario", "vms", "freq_ghz", "system", "mode", "throughput_mbps", "cpu_ms"}, out)
}

// CSVFig13 renders Figure 13 rows as CSV.
func CSVFig13(rows []Fig13Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Scenario.String(), r.System, f3(r.Throughput), intS(r.Refreshes)})
	}
	return writeCSV([]string{"scenario", "system", "throughput_mbps", "refreshes"}, out)
}

// CSVTable2 renders Table 2 rows as CSV.
func CSVTable2(rows []Table2Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Phase, f3(r.Vanilla), f3(r.VRead), f3(r.Improvement())})
	}
	return writeCSV([]string{"phase", "vanilla_mbps", "vread_mbps", "improvement_pct"}, out)
}

// CSVTable3 renders Table 3 rows as CSV.
func CSVTable3(rows []Table3Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Workload, msS(r.Vanilla), msS(r.VRead), f3(r.Reduction())})
	}
	return writeCSV([]string{"workload", "vanilla_ms", "vread_ms", "reduction_pct"}, out)
}

// CSVAblations renders ablation rows as CSV.
func CSVAblations(rows []AblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Study, r.Config, f3(r.Value), r.Unit})
	}
	return writeCSV([]string{"study", "config", "value", "unit"}, out)
}
