package experiments

import (
	"fmt"
	"time"

	"vread/internal/mapred"
	"vread/internal/sim"
	"vread/internal/workload"
)

// DFSIORow is one bar of Figures 11 and 12: a TestDFSIO run under one
// (scenario, VM count, frequency, system, read mode) point.
type DFSIORow struct {
	Scenario   Scenario
	VMs        int
	FreqHz     int64
	System     string  // "vanilla" | "vRead"
	Mode       string  // "read" | "re-read"
	Throughput float64 // MB/s, TestDFSIO's metric (fig 11)
	CPUTimeMs  float64 // CPU running time in ms (fig 12)
}

// RunFig11and12 reproduces Figures 11 and 12: the full TestDFSIO grid.
// Every testbed writes the dataset once, reads it cold ("read"), then reads
// it again warm ("re-read") — the paper's read vs re-read pairs. The 36 grid
// points are independent testbeds, so they fan out across Options.Parallel
// workers; row order is the nesting order regardless of parallelism.
func RunFig11and12(opt Options) ([]DFSIORow, error) {
	opt = opt.withDefaults()
	type cell struct {
		scenario Scenario
		vms      int
		freq     int64
		vread    bool
	}
	var cells []cell
	for _, scenario := range []Scenario{Colocated, Remote, Hybrid} {
		for _, vms := range []int{2, 4} {
			for _, freq := range PaperFreqs {
				for _, vread := range []bool{false, true} {
					cells = append(cells, cell{scenario, vms, freq, vread})
				}
			}
		}
	}
	return runCells(opt, len(cells), func(i int, o Options) ([]DFSIORow, error) {
		c := cells[i]
		return runDFSIOOnce(o, c.scenario, c.vms, c.freq, c.vread)
	})
}

// RunDFSIOPoint runs a single grid point (used by the CLI and ablations).
func RunDFSIOPoint(opt Options, scenario Scenario, vms int, freq int64, vread bool) ([]DFSIORow, error) {
	return runDFSIOOnce(opt.withDefaults(), scenario, vms, freq, vread)
}

func runDFSIOOnce(opt Options, scenario Scenario, vms int, freq int64, vread bool) ([]DFSIORow, error) {
	o := opt
	o.FreqHz = freq
	o.ExtraVMs = vms == 4
	o.VRead = vread
	tb := NewTestbed(o)
	defer tb.Close()
	tb.Place(scenario)

	// The paper reads 5 GB with the default 1 MB buffer.
	cfg := workload.DFSIOConfig{
		Files:    5,
		FileSize: o.scaled(1<<30, 16<<20),
		Seed:     uint64(o.Seed),
	}
	trackers := []*mapred.Tracker{tb.Tracker}
	label := fmt.Sprintf("dfsio-%s-%dvms-%s-%s", scenario, vms, GHz(freq), sysName(vread))

	var cold, warm workload.DFSIOResult
	if err := tb.Run(label, 4*time.Hour, func(p *sim.Proc) error {
		if _, err := workload.RunDFSIOWrite(p, tb.Engine, trackers, cfg); err != nil {
			return err
		}
		tb.DropAllCaches()
		var err error
		if cold, err = workload.RunDFSIORead(p, tb.Engine, trackers, cfg); err != nil {
			return err
		}
		warm, err = workload.RunDFSIORead(p, tb.Engine, trackers, cfg)
		return err
	}); err != nil {
		return nil, err
	}
	mk := func(mode string, res workload.DFSIOResult) DFSIORow {
		return DFSIORow{
			Scenario:   scenario,
			VMs:        vms,
			FreqHz:     freq,
			System:     sysName(vread),
			Mode:       mode,
			Throughput: res.Throughput(),
			CPUTimeMs:  float64(res.CPUTime(freq)) / float64(time.Millisecond),
		}
	}
	return []DFSIORow{mk("read", cold), mk("re-read", warm)}, nil
}

// Fig13Row is one bar of Figure 13: TestDFSIO-write throughput.
type Fig13Row struct {
	Scenario   Scenario
	System     string
	Throughput float64 // MB/s
	Refreshes  int64   // vRead dentry refreshes triggered by the write
}

// RunFig13 reproduces Figure 13: write throughput with and without vRead's
// mount-point refresh on the write path (the overhead the figure shows to
// be negligible). CPU fixed at 2.0 GHz per the paper.
func RunFig13(opt Options) ([]Fig13Row, error) {
	opt = opt.withDefaults()
	opt.FreqHz = 2_000_000_000
	type cell struct {
		scenario Scenario
		vread    bool
	}
	var cells []cell
	for _, scenario := range []Scenario{Colocated, Remote, Hybrid} {
		for _, vread := range []bool{false, true} {
			cells = append(cells, cell{scenario, vread})
		}
	}
	return runCells(opt, len(cells), func(i int, o Options) ([]Fig13Row, error) {
		scenario, vread := cells[i].scenario, cells[i].vread
		o.VRead = vread
		o.ExtraVMs = false
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(scenario)
		cfg := workload.DFSIOConfig{
			Files:    5,
			FileSize: o.scaled(1<<30, 16<<20),
			Seed:     uint64(o.Seed),
		}
		var res workload.DFSIOResult
		if err := tb.Run(fmt.Sprintf("fig13-%s-%s", scenario, sysName(vread)), 4*time.Hour, func(p *sim.Proc) error {
			r, err := workload.RunDFSIOWrite(p, tb.Engine, []*mapred.Tracker{tb.Tracker}, cfg)
			if err != nil {
				return err
			}
			res = r
			return nil
		}); err != nil {
			return nil, err
		}
		row := Fig13Row{Scenario: scenario, System: sysName(vread), Throughput: res.Throughput()}
		if tb.Mgr != nil {
			row.Refreshes = tb.Mgr.Refreshes()
		}
		return []Fig13Row{row}, nil
	})
}
