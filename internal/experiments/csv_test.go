package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, s)
	}
	return rows
}

func TestCSVFig2(t *testing.T) {
	rows := parseCSV(t, CSVFig2([]Fig2Row{
		{ReqSize: 65536, Cached: true, InterVM: 2 * time.Millisecond, Local: 500 * time.Microsecond},
	}))
	if len(rows) != 2 || rows[1][0] != "65536" || rows[1][1] != "true" || rows[1][2] != "2.000" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVFig9IncludesP99(t *testing.T) {
	rows := parseCSV(t, CSVFig9([]Fig9Row{{
		ReqSize: 1 << 20, VMs: 4, Vanilla: 3 * time.Millisecond, VRead: time.Millisecond,
		VanillaP99: 5 * time.Millisecond, VReadP99: 2 * time.Millisecond,
	}}))
	if rows[0][5] != "vanilla_p99_ms" || rows[1][5] != "5.000" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVDFSIO(t *testing.T) {
	rows := parseCSV(t, CSVDFSIO([]DFSIORow{{
		Scenario: Hybrid, VMs: 4, FreqHz: 3_200_000_000, System: "vRead",
		Mode: "re-read", Throughput: 819.7, CPUTimeMs: 182,
	}}))
	want := []string{"hybrid", "4", "3.2", "vRead", "re-read", "819.700", "182.000"}
	for i, v := range want {
		if rows[1][i] != v {
			t.Fatalf("col %d = %q, want %q", i, rows[1][i], v)
		}
	}
}

func TestCSVBreakdownsLongForm(t *testing.T) {
	rows := parseCSV(t, CSVBreakdowns([]BreakdownRow{{
		Figure: "fig6", Side: "client", System: "vanilla",
		Breakdown: map[string]float64{"vhost-net": 0.25, "others": 0.05},
	}}))
	if len(rows) != 3 { // header + 2 tags
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVTablesAndAblations(t *testing.T) {
	if got := parseCSV(t, CSVTable2([]Table2Row{{Phase: "Scan", Vanilla: 6.26, VRead: 7.97}})); got[1][3] == "" {
		t.Fatal("missing improvement column")
	}
	if got := parseCSV(t, CSVTable3([]Table3Row{{Workload: "Hive select", Vanilla: time.Second, VRead: 800 * time.Millisecond}})); got[1][3] != "20.000" {
		t.Fatalf("reduction = %v", got[1])
	}
	if got := parseCSV(t, CSVFig13([]Fig13Row{{Scenario: Remote, System: "vRead", Throughput: 120, Refreshes: 5}})); got[1][0] != "remote" {
		t.Fatalf("fig13 = %v", got[1])
	}
	if got := parseCSV(t, CSVFig3([]Fig3Row{{ReqSize: 32768, VMs: 2, Rate: 9489}})); got[1][2] != "9489.000" {
		t.Fatalf("fig3 = %v", got[1])
	}
	if got := parseCSV(t, CSVAblations([]AblationRow{{Study: "s", Config: "c, with comma", Value: 1, Unit: "u"}})); got[1][1] != "c, with comma" {
		t.Fatalf("comma not quoted: %v", got[1])
	}
}
