package experiments

import (
	"testing"
)

// tiny returns options small enough for unit tests (shapes only).
func tiny() Options {
	return Options{Seed: 1, Scale: 0.02}
}

func TestFig2Shape(t *testing.T) {
	rows, err := RunFig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("fig2 req=%-8d cached=%-5v interVM=%-12v local=%v", r.ReqSize, r.Cached, r.InterVM, r.Local)
		if r.InterVM <= r.Local {
			t.Errorf("req %d cached %v: inter-VM %v not slower than local %v", r.ReqSize, r.Cached, r.InterVM, r.Local)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := RunFig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	rate := map[[2]int64]float64{}
	for _, r := range rows {
		t.Logf("fig3 req=%-8d vms=%d rate=%.0f/s", r.ReqSize, r.VMs, r.Rate)
		rate[[2]int64{r.ReqSize, int64(r.VMs)}] = r.Rate
	}
	for _, req := range Fig3ReqSizes {
		r2, r4 := rate[[2]int64{req, 2}], rate[[2]int64{req, 4}]
		if r4 >= r2 {
			t.Errorf("req %d: 4-VM rate %.0f not below 2-VM rate %.0f", req, r4, r2)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := RunFig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatBreakdownRows(rows))
	byKey := map[string]BreakdownRow{}
	for _, r := range rows {
		byKey[r.Side+"/"+r.System] = r
	}
	// vRead saves CPU on both sides (paper: ~40% client, ~65% datanode).
	if byKey["client/vRead"].Total() >= byKey["client/vanilla"].Total() {
		t.Error("vRead client CPU not below vanilla")
	}
	if byKey["datanode/vRead"].Total() >= byKey["datanode/vanilla"].Total() {
		t.Error("vRead daemon CPU not below vanilla datanode")
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := RunFig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("fig9 req=%-8d vms=%d cached=%-5v vanilla=%-12v vread=%v", r.ReqSize, r.VMs, r.Cached, r.Vanilla, r.VRead)
		if r.VRead >= r.Vanilla {
			t.Errorf("req %d vms %d cached %v: vRead %v not faster than vanilla %v",
				r.ReqSize, r.VMs, r.Cached, r.VRead, r.Vanilla)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := RunFig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[Scenario]map[string]Fig13Row{}
	for _, r := range rows {
		t.Logf("fig13 %-10s %-8s %.1f MB/s refreshes=%d", r.Scenario, r.System, r.Throughput, r.Refreshes)
		if byScenario[r.Scenario] == nil {
			byScenario[r.Scenario] = map[string]Fig13Row{}
		}
		byScenario[r.Scenario][r.System] = r
	}
	for s, m := range byScenario {
		va, vr := m["vanilla"].Throughput, m["vRead"].Throughput
		// Write-path overhead of the refresh must be negligible (±5%).
		if vr < va*0.95 {
			t.Errorf("%s: vRead write %.1f more than 5%% below vanilla %.1f", s, vr, va)
		}
		if m["vRead"].Refreshes == 0 {
			t.Errorf("%s: no refreshes recorded for vRead writes", s)
		}
	}
}

func TestDFSIOPointShape(t *testing.T) {
	opt := tiny()
	van, err := RunDFSIOPoint(opt, Colocated, 2, 2_000_000_000, false)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := RunDFSIOPoint(opt, Colocated, 2, 2_000_000_000, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(van, vr...) {
		t.Logf("dfsio %-10s %dvms %s %-8s %-7s thr=%6.1f MB/s cpu=%6.0f ms",
			r.Scenario, r.VMs, GHz(r.FreqHz), r.System, r.Mode, r.Throughput, r.CPUTimeMs)
	}
	// cold: vRead faster; warm: much faster; CPU lower in both modes.
	if vr[0].Throughput <= van[0].Throughput {
		t.Error("vRead cold DFSIO not faster")
	}
	if vr[1].Throughput <= van[1].Throughput {
		t.Error("vRead re-read DFSIO not faster")
	}
	if vr[0].CPUTimeMs >= van[0].CPUTimeMs {
		t.Error("vRead DFSIO CPU not lower")
	}
}

func TestTable2Shape(t *testing.T) {
	opt := tiny()
	rows, err := RunTable2(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("table2 %-16s vanilla=%6.2f MB/s vread=%6.2f MB/s (+%.1f%%)", r.Phase, r.Vanilla, r.VRead, r.Improvement())
		if r.VRead <= r.Vanilla {
			t.Errorf("%s: vRead %.2f not above vanilla %.2f", r.Phase, r.VRead, r.Vanilla)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	opt := tiny()
	rows, err := RunTable3(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("table3 %-14s vanilla=%-12v vread=%-12v (-%.1f%%)", r.Workload, r.Vanilla, r.VRead, r.Reduction())
		if r.VRead >= r.Vanilla {
			t.Errorf("%s: vRead %v not below vanilla %v", r.Workload, r.VRead, r.Vanilla)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	opt := tiny()
	for name, fn := range map[string]func(Options) ([]AblationRow, error){
		"ring":         RunAblationRingSlots,
		"direct":       RunAblationDirectRead,
		"transport":    RunAblationTransport,
		"shortcircuit": RunAblationShortCircuit,
	} {
		rows, err := fn(opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		for _, r := range rows {
			t.Logf("%-16s %-28s %10.2f %s", r.Study, r.Config, r.Value, r.Unit)
			if r.Value <= 0 {
				t.Errorf("%s %s: non-positive value", r.Study, r.Config)
			}
		}
	}
}

func TestDeterministicExperiment(t *testing.T) {
	a, err := RunFig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
