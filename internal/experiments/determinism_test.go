package experiments

import (
	"strings"
	"testing"

	"vread/internal/faults"
	"vread/internal/trace"
)

// TestDFSIODeterministicReplay runs one DFSIO point twice with identical
// options and asserts that the result CSV and both trace exports are
// byte-identical — the bit-reproducibility invariant the determinism and
// sim-discipline analyzers exist to protect.
func TestDFSIODeterministicReplay(t *testing.T) {
	run := func() (csv, chrome, spans string) {
		t.Helper()
		col := &trace.Collector{}
		opt := Options{Seed: 7, Scale: 0.02, VRead: true, Traces: col, TraceEvery: 1}
		rows, err := RunDFSIOPoint(opt, Colocated, 2, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		var chromeBuf, spansBuf strings.Builder
		if err := trace.WriteChrome(&chromeBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteSpansCSV(&spansBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		return CSVDFSIO(rows), chromeBuf.String(), spansBuf.String()
	}

	csv1, chrome1, spans1 := run()
	csv2, chrome2, spans2 := run()

	if len(chrome1) == 0 || len(spans1) == 0 {
		t.Fatal("trace exports are empty; the runs collected no traces")
	}
	if csv1 != csv2 {
		t.Errorf("DFSIO CSV differs across identical runs:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if chrome1 != chrome2 {
		t.Error("Chrome trace export differs across identical runs")
	}
	if spans1 != spans2 {
		t.Error("spans CSV export differs across identical runs")
	}
}

// TestParallelMatchesSerial asserts the fan-out's core guarantee: running a
// grid with Parallel > 1 yields byte-identical rows, CSV, and trace exports
// to the serial path (Parallel = 1), because cells are independent testbeds
// whose results and traces are collected by index, not completion order.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) (csv, chrome, spans string, fired int64) {
		t.Helper()
		col := &trace.Collector{}
		stats := &RunStats{}
		opt := Options{
			Seed: 7, Scale: 0.01, Traces: col, TraceEvery: 4,
			Parallel: parallel, Stats: stats,
		}
		rows, err := RunFig13(opt)
		if err != nil {
			t.Fatal(err)
		}
		var chromeBuf, spansBuf strings.Builder
		if err := trace.WriteChrome(&chromeBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteSpansCSV(&spansBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		return CSVFig13(rows), chromeBuf.String(), spansBuf.String(), stats.Events()
	}

	serialCSV, serialChrome, serialSpans, serialFired := run(1)
	parCSV, parChrome, parSpans, parFired := run(8)

	if len(serialChrome) == 0 || len(serialSpans) == 0 {
		t.Fatal("serial trace exports are empty; the runs collected no traces")
	}
	if serialCSV != parCSV {
		t.Errorf("rows CSV differs between serial and parallel runs:\n--- serial\n%s\n--- parallel\n%s", serialCSV, parCSV)
	}
	if serialChrome != parChrome {
		t.Error("Chrome trace export differs between serial and parallel runs")
	}
	if serialSpans != parSpans {
		t.Error("spans CSV export differs between serial and parallel runs")
	}
	if serialFired == 0 || serialFired != parFired {
		t.Errorf("fired-event totals differ: serial %d, parallel %d", serialFired, parFired)
	}
}

// TestParallelMatchesSerialDelayGrid runs the same comparison over the
// Figure 9 latency grid, whose cells carry per-request latency recorders
// (means and percentiles are sensitive to any cross-cell interference).
func TestParallelMatchesSerialDelayGrid(t *testing.T) {
	run := func(parallel int) []Fig9Row {
		t.Helper()
		rows, err := RunFig9(Options{Seed: 3, Scale: 0.002, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	par := run(8)
	if len(serial) == 0 || len(serial) != len(par) {
		t.Fatalf("row counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("row %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], par[i])
		}
	}
}

// TestDFSIOFaultedReplayIsByteIdentical is the chaos determinism acceptance
// criterion at the experiment layer: a DFSIO run with faults armed must
// replay byte-identically from the same seed — rows, trace exports, and
// fault tallies all included. The fault schedule is part of the simulation,
// not noise on top of it.
func TestDFSIOFaultedReplayIsByteIdentical(t *testing.T) {
	spec, err := faults.ParseSpec(
		"disk.read.slow:p=0.2,delay=1ms;ring.doorbell.lost:p=0.2;net.frame.delay:p=0.2,delay=500us")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (csv, chrome, spans string) {
		t.Helper()
		col := &trace.Collector{}
		opt := Options{Seed: 7, Scale: 0.02, VRead: true, Traces: col, TraceEvery: 1, Faults: spec}
		rows, err := RunDFSIOPoint(opt, Colocated, 2, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		var chromeBuf, spansBuf strings.Builder
		if err := trace.WriteChrome(&chromeBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteSpansCSV(&spansBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		return CSVDFSIO(rows), chromeBuf.String(), spansBuf.String()
	}

	csv1, chrome1, spans1 := run()
	csv2, chrome2, spans2 := run()
	if csv1 != csv2 {
		t.Errorf("faulted DFSIO CSV differs across identical runs:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if chrome1 != chrome2 {
		t.Error("faulted Chrome trace export differs across identical runs")
	}
	if spans1 != spans2 {
		t.Error("faulted spans CSV export differs across identical runs")
	}
	// The faulted run must actually diverge from the fault-free one, or the
	// injection never engaged.
	colClean := &trace.Collector{}
	cleanRows, err := RunDFSIOPoint(Options{Seed: 7, Scale: 0.02, VRead: true, Traces: colClean, TraceEvery: 1}, Colocated, 2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if CSVDFSIO(cleanRows) == csv1 {
		t.Error("faulted run is identical to the fault-free run; faults never engaged")
	}
}

// TestFaultSweepRows smoke-checks the resilience ablation: the baseline
// reports no fault rows, every faulted profile reports its fired count, and
// the sweep is deterministic under the parallel runner.
func TestFaultSweepRows(t *testing.T) {
	profiles := []FaultProfile{
		{Name: "baseline"},
		{Name: "slow-disk", Spec: "disk.read.slow:p=0.3,delay=2ms"},
		{Name: "lost-doorbells", Spec: "ring.doorbell.lost:p=0.5"},
	}
	run := func(parallel int) []AblationRow {
		t.Helper()
		rows, err := RunFaultSweep(Options{Seed: 11, Scale: 0.01, Parallel: parallel}, profiles...)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	rows := run(1)
	if len(rows) != 1+2*3 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	byConfig := make(map[string]map[string]float64)
	for _, r := range rows {
		if r.Study != "fault-sweep" {
			t.Fatalf("unexpected study %q", r.Study)
		}
		if byConfig[r.Config] == nil {
			byConfig[r.Config] = make(map[string]float64)
		}
		byConfig[r.Config][r.Unit] = r.Value
	}
	if byConfig["baseline"]["MB/s cold remote read"] <= 0 {
		t.Fatal("baseline throughput missing")
	}
	for _, name := range []string{"slow-disk", "lost-doorbells"} {
		if byConfig[name]["faults fired"] == 0 {
			t.Errorf("profile %s never fired", name)
		}
		if thr := byConfig[name]["MB/s cold remote read"]; thr <= 0 {
			t.Errorf("profile %s throughput = %v", name, thr)
		}
	}
	par := run(4)
	for i := range rows {
		if rows[i] != par[i] {
			t.Errorf("row %d differs between serial and parallel sweep:\nserial:   %+v\nparallel: %+v", i, rows[i], par[i])
		}
	}
}
