package experiments

import (
	"strings"
	"testing"

	"vread/internal/trace"
)

// TestDFSIODeterministicReplay runs one DFSIO point twice with identical
// options and asserts that the result CSV and both trace exports are
// byte-identical — the bit-reproducibility invariant the determinism and
// sim-discipline analyzers exist to protect.
func TestDFSIODeterministicReplay(t *testing.T) {
	run := func() (csv, chrome, spans string) {
		t.Helper()
		col := &trace.Collector{}
		opt := Options{Seed: 7, Scale: 0.02, VRead: true, Traces: col, TraceEvery: 1}
		rows, err := RunDFSIOPoint(opt, Colocated, 2, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		var chromeBuf, spansBuf strings.Builder
		if err := trace.WriteChrome(&chromeBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteSpansCSV(&spansBuf, col.Traces); err != nil {
			t.Fatal(err)
		}
		return CSVDFSIO(rows), chromeBuf.String(), spansBuf.String()
	}

	csv1, chrome1, spans1 := run()
	csv2, chrome2, spans2 := run()

	if len(chrome1) == 0 || len(spans1) == 0 {
		t.Fatal("trace exports are empty; the runs collected no traces")
	}
	if csv1 != csv2 {
		t.Errorf("DFSIO CSV differs across identical runs:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if chrome1 != chrome2 {
		t.Error("Chrome trace export differs across identical runs")
	}
	if spans1 != spans2 {
		t.Error("spans CSV export differs across identical runs")
	}
}
