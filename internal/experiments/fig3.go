package experiments

import (
	"fmt"
	"time"

	"vread/internal/sim"
	"vread/internal/workload"
)

// Fig3ReqSizes is Figure 3's request-size sweep.
var Fig3ReqSizes = []int64{32 << 10, 64 << 10, 128 << 10}

// Fig3Row is one bar of Figure 3: netperf TCP_RR rate between two co-located
// VMs at one request size and VM count.
type Fig3Row struct {
	ReqSize int64
	VMs     int
	Rate    float64 // transactions/second
}

// RunFig3 reproduces Figure 3: I/O-thread synchronization overhead. A
// netperf server and client in two co-located VMs on a quad-core host; the
// 4-VM variant adds two 85% lookbusy VMs.
func RunFig3(opt Options) ([]Fig3Row, error) {
	opt = opt.withDefaults()
	dur := 2 * time.Second
	type cell struct {
		vms int
		req int64
	}
	var cells []cell
	for _, vms := range []int{2, 4} {
		for _, req := range Fig3ReqSizes {
			cells = append(cells, cell{vms, req})
		}
	}
	return runCells(opt, len(cells), func(i int, o Options) ([]Fig3Row, error) {
		vms, req := cells[i].vms, cells[i].req
		o.VRead = false
		o.ExtraVMs = false
		tb := NewTestbed(o)
		defer tb.Close()
		if vms == 4 {
			// Figure 3's setup: exactly 2 lookbusy VMs on the netperf host.
			for j := 0; j < 2; j++ {
				hog := tb.C.Host("host1").AddVM(fmt.Sprintf("nphog%d", j), "hog")
				workload.StartLookbusy(hog, 0.85, 0)
			}
		}
		workload.StartNetperfServer(tb.C.VM("dn1").Kernel)
		var res workload.NetperfResult
		if err := tb.Run(fmt.Sprintf("fig3-%d-%d", vms, req), time.Hour, func(p *sim.Proc) error {
			r, err := workload.RunNetperfRR(p, tb.C.VM("client").Kernel, "dn1", req, dur)
			if err != nil {
				return err
			}
			res = r
			return nil
		}); err != nil {
			return nil, err
		}
		return []Fig3Row{{ReqSize: req, VMs: vms, Rate: res.Rate()}}, nil
	})
}
