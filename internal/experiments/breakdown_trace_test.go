package experiments

import (
	"bytes"
	"math"
	"testing"

	"vread/internal/core"
	"vread/internal/trace"
)

// TestBreakdownSpanRegistryAgreement is the cross-check the trace pipeline
// is built on: the Figure 6 bars derived from per-request span charges must
// agree with the metrics.Registry cycle counters (the ground truth every
// CPU.consume call feeds directly) within 1% per tag.
func TestBreakdownSpanRegistryAgreement(t *testing.T) {
	rows, regRows, err := runBreakdown(tiny(), "fig6", Colocated, core.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(regRows) {
		t.Fatalf("row counts differ: %d vs %d", len(rows), len(regRows))
	}
	for i := range rows {
		span, reg := rows[i], regRows[i]
		if span.Side != reg.Side || span.System != reg.System {
			t.Fatalf("row %d mismatched: %+v vs %+v", i, span, reg)
		}
		total := reg.Total()
		if total == 0 {
			t.Fatalf("%s/%s: empty registry bar", reg.Side, reg.System)
		}
		tags := map[string]bool{}
		for tag := range span.Breakdown {
			tags[tag] = true
		}
		for tag := range reg.Breakdown {
			tags[tag] = true
		}
		for tag := range tags {
			s, r := span.Breakdown[tag], reg.Breakdown[tag]
			// Within 1% of the tag's own value, with an absolute floor of
			// 1% of the bar for tags too small for a relative bound.
			tol := 0.01*r + 0.01*total
			if diff := math.Abs(s - r); diff > tol {
				t.Errorf("%s/%s tag %q: span %.4f vs registry %.4f (diff %.4f > tol %.4f)",
					span.Side, span.System, tag, s, r, diff, tol)
			}
		}
		t.Logf("%s/%-8s span total %.4f, registry total %.4f", span.Side, span.System, span.Total(), total)
	}
}

// TestBreakdownTraceDeterminism: two same-seed breakdown runs must produce
// byte-identical Chrome trace JSON — the -trace flag's contract.
func TestBreakdownTraceDeterminism(t *testing.T) {
	export := func() []byte {
		opt := tiny()
		opt.Traces = &trace.Collector{}
		if _, _, err := runBreakdown(opt, "fig6", Colocated, core.TransportRDMA); err != nil {
			t.Fatal(err)
		}
		if len(opt.Traces.Traces) == 0 {
			t.Fatal("no traces collected")
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, opt.Traces.Traces); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := export()
	b := export()
	if !bytes.Equal(a, b) {
		t.Fatal("Chrome trace JSON differs between identical seeded runs")
	}
	t.Logf("deterministic trace export: %d bytes", len(a))
}

// TestDelayStages exercises the per-stage percentile reducer end to end on
// the Figure 9 workload.
func TestDelayStages(t *testing.T) {
	stats, err := RunDelayStages(tiny(), 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stages")
	}
	found := map[string]bool{}
	for _, s := range stats {
		t.Logf("stage %-7s %-16s n=%-5d p50=%-12v p95=%-12v p99=%v", s.Layer, s.Name, s.Count, s.P50, s.P95, s.P99)
		found[s.Layer.String()+"/"+s.Name] = true
		if s.Count <= 0 {
			t.Errorf("stage %s/%s has no samples", s.Layer, s.Name)
		}
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			t.Errorf("stage %s/%s percentiles not monotonic: %+v", s.Layer, s.Name, s)
		}
	}
	// The vRead read path's stages must be present.
	for _, want := range []string{"client/read1", "lib/vread-read", "ring/ring-drain", "daemon/read-local", "hostfs/host-read"} {
		if !found[want] {
			t.Errorf("stage %s missing (got %v)", want, found)
		}
	}
}
