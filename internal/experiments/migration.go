// Migration sweep: the availability experiment for live mount migration. A
// datanode's image is live-migrated mid-storm while a configurable number of
// client VMs stream reads from it; each cell measures the read-latency
// blackout the cutover imposes versus the in-flight depth. The contract is
// zero lost or corrupted reads at every depth — in-flight reads block through
// the blackout and replay, so the migration is visible only as latency — and
// the whole sweep is replayable by (seed, config): the per-stream completion
// logs fold into a fingerprint that is byte-identical across serial and
// parallel runs.
package experiments

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// MigrationConfig describes one migration sweep.
type MigrationConfig struct {
	Seed int64
	// Depths lists the concurrent-reader-VM counts, one cell each. Default
	// {1, 2, 4, 8}.
	Depths []int
	// ReadsPerStream is how many reads each reader VM issues. Default 12.
	ReadsPerStream int
	// ReadSize is bytes per read. Default 256 KiB.
	ReadSize int64
	// FileSize is the migrated datanode's file size. Default 4 MiB.
	FileSize int64
	// TriggerAfter is the virtual delay before the migration fires, measured
	// from the storm's start — deep enough into the storm that every stream
	// has reads in flight. Default 5 ms.
	TriggerAfter time.Duration
	// Deadline bounds each cell in virtual time. Default 4 h.
	Deadline time.Duration
}

// WithDefaults fills zero fields.
func (c MigrationConfig) WithDefaults() MigrationConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 2, 4, 8}
	}
	if c.ReadsPerStream == 0 {
		c.ReadsPerStream = 12
	}
	if c.ReadSize == 0 {
		c.ReadSize = 256 << 10
	}
	if c.FileSize == 0 {
		c.FileSize = 4 << 20
	}
	if c.TriggerAfter == 0 {
		c.TriggerAfter = 5 * time.Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = 4 * time.Hour
	}
	return c
}

// MigrationRow is one cell of the migration sweep.
type MigrationRow struct {
	Depth       int           // concurrent reader VMs during the cutover
	Blackout    time.Duration // quiesce-start → rings-restored window
	Quiesced    int           // client rings quiesced for the cutover
	Captured    int           // descriptors captured and replayed across it
	WorstIn     time.Duration // worst read latency overlapping the blackout
	WorstOut    time.Duration // worst read latency outside it (the baseline)
	Reads       int           // reads completed (all of them, correct)
	Fingerprint uint64        // FNV-1a over the per-stream completion logs
}

// RunMigrationSweep runs one cell per depth and returns the blackout rows.
// Any lost, failed, or corrupted read fails the sweep with an error — the
// experiment's contract, not a statistic.
func RunMigrationSweep(opt Options, mc MigrationConfig) ([]MigrationRow, error) {
	opt = opt.withDefaults()
	mc = mc.WithDefaults()
	return runCells(opt, len(mc.Depths), func(i int, o Options) ([]MigrationRow, error) {
		row, err := runMigrationCell(o, mc, mc.Depths[i])
		if err != nil {
			return nil, fmt.Errorf("experiments: migration depth %d: %w", mc.Depths[i], err)
		}
		return []MigrationRow{row}, nil
	})
}

func runMigrationCell(opt Options, mc MigrationConfig, depth int) (MigrationRow, error) {
	row := MigrationRow{Depth: depth}
	c := cluster.New(mc.Seed, cluster.Params{FreqHz: opt.FreqHz})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	readers := make([]string, depth)
	for s := range readers {
		readers[s] = fmt.Sprintf("reader%d", s)
		h1.AddVM(readers[s], metrics.TagClientApp)
	}
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	h2.AddVM("dn2", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 64 << 20}, c.Fabric)
	hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	hdfs.StartDataNode(c.Env, nn, c.VM("dn2").Kernel)
	writer := hdfs.NewClient(c.Env, nn, c.VM(readers[0]).Kernel)
	nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn1"} })

	vcfg := core.Config{Transport: opt.Transport}
	if opt.VReadConfig != nil {
		vcfg = *opt.VReadConfig
		vcfg.Transport = opt.Transport
	}
	mgr := core.NewManager(c, nn, vcfg)
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	libs := make([]*core.Lib, depth)
	for s, r := range readers {
		libs[s] = mgr.EnableClient(r)
	}
	writer.SetBlockReader(libs[0])

	content := data.Pattern{Seed: uint64(mc.Seed)*1000 + uint64(depth), Size: mc.FileSize}
	want := data.NewSlice(content)
	span := mc.FileSize - mc.ReadSize

	// Per-stream completion logs, classified against the migration window and
	// folded into the fingerprint in stream order after the drain — identical
	// no matter how cells are scheduled.
	type readRec struct {
		j     int
		off   int64
		start time.Duration
		lat   time.Duration
	}
	logs := make([][]readRec, depth)
	var migStart, migEnd time.Duration
	var ferr error
	fail := func(format string, args ...interface{}) {
		if ferr == nil {
			ferr = fmt.Errorf(format, args...)
		}
	}

	written := false
	c.Go("writer", func(p *sim.Proc) {
		if err := writer.WriteFile(p, "/mig/f", content); err != nil {
			fail("write: %v", err)
			return
		}
		written = true
	})
	if err := c.Env.RunUntil(c.Env.Now() + time.Hour); err != nil {
		return row, err
	}
	if ferr != nil || !written {
		return row, fmt.Errorf("write phase did not complete: %v", ferr)
	}

	storm := c.Env.Now()
	done := 0
	for s := range readers {
		s := s
		c.Go(readers[s]+"-storm", func(p *sim.Proc) {
			vfd, ok := libs[s].OpenPath(p, nil, "dn1", hdfs.BlockPath(1), "blk_1")
			if !ok {
				fail("stream %d: open failed", s)
				return
			}
			for j := 0; j < mc.ReadsPerStream; j++ {
				// Arithmetic offsets — no RNG, so the schedule is identical
				// at every depth prefix and across serial/parallel runs.
				off := int64((uint64(s)*2654435761 + uint64(j)*40503) % uint64(span+1))
				start := c.Env.Now()
				got, err := vfd.ReadAt(p, nil, off, mc.ReadSize)
				lat := c.Env.Now() - start
				if err != nil {
					fail("stream %d read %d: %v", s, j, err)
					return
				}
				if !data.Equal(got, want.Sub(off, mc.ReadSize)) {
					fail("stream %d read %d: silent corruption", s, j)
					return
				}
				row.Reads++
				logs[s] = append(logs[s], readRec{j: j, off: off, start: start, lat: lat})
			}
			vfd.Close(p, nil)
			done++
		})
	}
	c.Go("migrator", func(p *sim.Proc) {
		p.Sleep(mc.TriggerAfter)
		migStart = c.Env.Now()
		mig, err := mgr.MigrateMount(p, "dn1", "host1", "host2")
		migEnd = c.Env.Now()
		if err != nil {
			fail("migration: %v", err)
			return
		}
		row.Blackout = mig.Blackout
		row.Quiesced = mig.Quiesced
		row.Captured = mig.Captured
	})
	if err := c.Env.RunUntil(storm + mc.Deadline); err != nil {
		return row, err
	}
	if ferr != nil {
		return row, ferr
	}
	if done != depth {
		return row, fmt.Errorf("%d of %d streams wedged", depth-done, depth)
	}
	if row.Quiesced != depth {
		return row, fmt.Errorf("quiesced %d rings, want %d", row.Quiesced, depth)
	}
	if pend := c.Env.Pending(); pend != 0 {
		return row, fmt.Errorf("%d events still pending after the storm", pend)
	}
	if pend := mgr.PendingRemoteReads(); pend != 0 {
		return row, fmt.Errorf("%d remote reads leaked", pend)
	}

	fp := fnv.New64a()
	for s := range logs {
		for _, r := range logs[s] {
			// A read overlaps the blackout when it started before the restore
			// and ended after the quiesce began.
			overlap := migEnd > 0 && r.start < migEnd && r.start+r.lat > migStart
			if overlap {
				if r.lat > row.WorstIn {
					row.WorstIn = r.lat
				}
			} else if r.lat > row.WorstOut {
				row.WorstOut = r.lat
			}
			fmt.Fprintf(fp, "%d|%d|%d|%d|%v\n", s, r.j, r.off, r.lat, overlap)
		}
	}
	fmt.Fprintf(fp, "blackout=%v quiesced=%d captured=%d\n", row.Blackout, row.Quiesced, row.Captured)
	row.Fingerprint = fp.Sum64()
	return row, nil
}

// FormatMigration renders migration sweep rows as an aligned table.
func FormatMigration(rows []MigrationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %9s %9s %15s %15s %6s\n",
		"depth", "blackout", "quiesced", "captured", "worst-in", "worst-out", "reads")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %12v %9d %9d %15v %15v %6d\n",
			r.Depth, r.Blackout, r.Quiesced, r.Captured, r.WorstIn, r.WorstOut, r.Reads)
	}
	return b.String()
}

// CSVMigration renders migration sweep rows as CSV.
func CSVMigration(rows []MigrationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Depth), msS(r.Blackout), strconv.Itoa(r.Quiesced),
			strconv.Itoa(r.Captured), msS(r.WorstIn), msS(r.WorstOut),
			strconv.Itoa(r.Reads), fmt.Sprintf("%016x", r.Fingerprint),
		})
	}
	return writeCSV([]string{
		"depth", "blackout_ms", "quiesced", "captured",
		"worst_in_blackout_ms", "worst_outside_ms", "reads", "fingerprint",
	}, out)
}
