package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"vread/internal/core"
	"vread/internal/faults"
)

// OptionsJSON is the serializable form of Options used by scenario files
// (cmd/vread-sim -config). Field names are stable; absent fields keep their
// defaults.
type OptionsJSON struct {
	Seed             int64   `json:"seed,omitempty"`
	FreqGHz          float64 `json:"freq_ghz,omitempty"`
	ExtraVMs         bool    `json:"extra_vms,omitempty"`
	VRead            bool    `json:"vread,omitempty"`
	Transport        string  `json:"transport,omitempty"` // "rdma" | "tcp"
	DirectDiskBypass bool    `json:"direct_disk_bypass,omitempty"`
	SharedMemNet     bool    `json:"shared_mem_net,omitempty"`
	SRIOV            bool    `json:"sriov,omitempty"`
	ShortCircuit     bool    `json:"short_circuit,omitempty"`
	Scale            float64 `json:"scale,omitempty"`
	BlockSizeMB      int64   `json:"block_size_mb,omitempty"`
	Scenario         string  `json:"scenario,omitempty"` // "co-located" | "remote" | "hybrid"
	// Faults arms deterministic fault injection, in faults.ParseSpec syntax,
	// e.g. "disk.read.slow:p=0.2,delay=2ms;daemon.crash:after=10,max=1".
	Faults string `json:"faults,omitempty"`
}

// ParseOptions decodes a scenario file into Options plus the placement
// scenario (defaulting to co-located). Unknown fields are rejected so typos
// fail loudly.
func ParseOptions(raw []byte) (Options, Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var j OptionsJSON
	if err := dec.Decode(&j); err != nil {
		return Options{}, Colocated, fmt.Errorf("experiments: bad scenario config: %w", err)
	}
	opt := Options{
		Seed:             j.Seed,
		FreqHz:           int64(j.FreqGHz * 1e9),
		ExtraVMs:         j.ExtraVMs,
		VRead:            j.VRead,
		DirectDiskBypass: j.DirectDiskBypass,
		SharedMemNet:     j.SharedMemNet,
		SRIOV:            j.SRIOV,
		ShortCircuit:     j.ShortCircuit,
		Scale:            j.Scale,
		BlockSize:        j.BlockSizeMB << 20,
	}
	switch j.Transport {
	case "", "rdma":
		opt.Transport = core.TransportRDMA
	case "tcp":
		opt.Transport = core.TransportTCP
	default:
		return Options{}, Colocated, fmt.Errorf("experiments: unknown transport %q", j.Transport)
	}
	if j.Faults != "" {
		spec, err := faults.ParseSpec(j.Faults)
		if err != nil {
			return Options{}, Colocated, fmt.Errorf("experiments: %w", err)
		}
		opt.Faults = spec
	}
	var scenario Scenario
	switch j.Scenario {
	case "", "co-located", "colocated":
		scenario = Colocated
	case "remote":
		scenario = Remote
	case "hybrid":
		scenario = Hybrid
	default:
		return Options{}, Colocated, fmt.Errorf("experiments: unknown scenario %q", j.Scenario)
	}
	return opt, scenario, nil
}
