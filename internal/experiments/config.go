package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"vread/internal/core"
	"vread/internal/faults"
)

// OptionsJSON is the serializable form of Options used by scenario files
// (cmd/vread-sim -config). Field names are stable; absent fields keep their
// defaults.
type OptionsJSON struct {
	Seed             int64   `json:"seed,omitempty"`
	FreqGHz          float64 `json:"freq_ghz,omitempty"`
	ExtraVMs         bool    `json:"extra_vms,omitempty"`
	VRead            bool    `json:"vread,omitempty"`
	Transport        string  `json:"transport,omitempty"` // "rdma" | "tcp"
	DirectDiskBypass bool    `json:"direct_disk_bypass,omitempty"`
	SharedMemNet     bool    `json:"shared_mem_net,omitempty"`
	SRIOV            bool    `json:"sriov,omitempty"`
	ShortCircuit     bool    `json:"short_circuit,omitempty"`
	Scale            float64 `json:"scale,omitempty"`
	BlockSizeMB      int64   `json:"block_size_mb,omitempty"`
	Scenario         string  `json:"scenario,omitempty"` // "co-located" | "remote" | "hybrid"
	// Shards federates the namespace behind a router when > 1.
	Shards int `json:"shards,omitempty"`
	// Replication is the write-pipeline depth.
	Replication int `json:"replication,omitempty"`
	// Faults arms deterministic fault injection, in faults.ParseSpec syntax,
	// e.g. "disk.read.slow:p=0.2,delay=2ms;daemon.crash:after=10,max=1".
	Faults string `json:"faults,omitempty"`
	// ScaleOut, when present, selects the datacenter-scale scenario (RunScale)
	// instead of the two-host figure testbed.
	ScaleOut *ScaleOutJSON `json:"scale_out,omitempty"`
	// Migrate, when present, selects the live-mount-migration blackout sweep
	// (RunMigrationSweep) instead of the two-host figure testbed.
	Migrate *MigrateJSON `json:"migrate,omitempty"`
}

// ScaleOutJSON is the serializable form of ScaleConfig: the federated
// multi-domain topology and the open-loop storm driven over it.
type ScaleOutJSON struct {
	// Domains × RacksPerDomain × HostsPerRack hosts.
	Domains        int `json:"domains,omitempty"`
	RacksPerDomain int `json:"racks_per_domain,omitempty"`
	HostsPerRack   int `json:"hosts_per_rack,omitempty"`
	Datanodes      int `json:"datanodes,omitempty"`
	Clients        int `json:"clients,omitempty"`
	Files          int `json:"files,omitempty"`
	FileKB         int `json:"file_kb,omitempty"`
	// QPS levels of the open-loop storm, one experiment cell per level.
	QPS []float64 `json:"qps,omitempty"`
	// Reads is the arrival count per cell.
	Reads int `json:"reads,omitempty"`
	// KillRack names the rack a rack.kill firing (armed via "faults") takes
	// down mid-storm.
	KillRack string `json:"kill_rack,omitempty"`
}

// MigrateJSON is the serializable form of MigrationConfig: the in-flight
// depths to sweep and the per-stream storm a live mount migration cuts
// through.
type MigrateJSON struct {
	Depths         []int `json:"depths,omitempty"`
	ReadsPerStream int   `json:"reads_per_stream,omitempty"`
	ReadKB         int   `json:"read_kb,omitempty"`
	FileKB         int   `json:"file_kb,omitempty"`
	// TriggerAfterUS is the virtual delay, in microseconds, from storm start
	// to the migration firing.
	TriggerAfterUS int `json:"trigger_after_us,omitempty"`
}

// ParseMigrateOptions decodes a scenario file and reports whether it selects
// the migration sweep ("migrate" present).
func ParseMigrateOptions(raw []byte) (Options, MigrationConfig, bool, error) {
	opt, _, err := ParseOptions(raw)
	if err != nil {
		return Options{}, MigrationConfig{}, false, err
	}
	var j OptionsJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return Options{}, MigrationConfig{}, false, err
	}
	if j.Migrate == nil {
		return opt, MigrationConfig{}, false, nil
	}
	m := j.Migrate
	mc := MigrationConfig{
		Seed:           j.Seed,
		Depths:         m.Depths,
		ReadsPerStream: m.ReadsPerStream,
		ReadSize:       int64(m.ReadKB) << 10,
		FileSize:       int64(m.FileKB) << 10,
		TriggerAfter:   time.Duration(m.TriggerAfterUS) * time.Microsecond,
	}
	return opt, mc, true, nil
}

// ParseScaleOptions decodes a scenario file and reports whether it selects
// the scale-out path ("scale_out" present). Options.Shards/Replication apply
// to both paths.
func ParseScaleOptions(raw []byte) (Options, ScaleConfig, bool, error) {
	opt, _, err := ParseOptions(raw)
	if err != nil {
		return Options{}, ScaleConfig{}, false, err
	}
	var j OptionsJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return Options{}, ScaleConfig{}, false, err
	}
	if j.ScaleOut == nil {
		return opt, ScaleConfig{}, false, nil
	}
	s := j.ScaleOut
	sc := ScaleConfig{
		Domains:        s.Domains,
		RacksPerDomain: s.RacksPerDomain,
		HostsPerRack:   s.HostsPerRack,
		Shards:         j.Shards,
		Replication:    j.Replication,
		Datanodes:      s.Datanodes,
		Clients:        s.Clients,
		Files:          s.Files,
		FileSize:       int64(s.FileKB) << 10,
		QPSLevels:      s.QPS,
		Reads:          s.Reads,
		KillRack:       s.KillRack,
	}
	return opt, sc, true, nil
}

// ParseOptions decodes a scenario file into Options plus the placement
// scenario (defaulting to co-located). Unknown fields are rejected so typos
// fail loudly.
func ParseOptions(raw []byte) (Options, Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var j OptionsJSON
	if err := dec.Decode(&j); err != nil {
		return Options{}, Colocated, fmt.Errorf("experiments: bad scenario config: %w", err)
	}
	opt := Options{
		Seed:             j.Seed,
		FreqHz:           int64(j.FreqGHz * 1e9),
		ExtraVMs:         j.ExtraVMs,
		VRead:            j.VRead,
		DirectDiskBypass: j.DirectDiskBypass,
		SharedMemNet:     j.SharedMemNet,
		SRIOV:            j.SRIOV,
		ShortCircuit:     j.ShortCircuit,
		Scale:            j.Scale,
		BlockSize:        j.BlockSizeMB << 20,
		Shards:           j.Shards,
		Replication:      j.Replication,
	}
	switch j.Transport {
	case "", "rdma":
		opt.Transport = core.TransportRDMA
	case "tcp":
		opt.Transport = core.TransportTCP
	default:
		return Options{}, Colocated, fmt.Errorf("experiments: unknown transport %q", j.Transport)
	}
	if j.Faults != "" {
		spec, err := faults.ParseSpec(j.Faults)
		if err != nil {
			return Options{}, Colocated, fmt.Errorf("experiments: %w", err)
		}
		opt.Faults = spec
	}
	var scenario Scenario
	switch j.Scenario {
	case "", "co-located", "colocated":
		scenario = Colocated
	case "remote":
		scenario = Remote
	case "hybrid":
		scenario = Hybrid
	default:
		return Options{}, Colocated, fmt.Errorf("experiments: unknown scenario %q", j.Scenario)
	}
	return opt, scenario, nil
}
