package fsim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"vread/internal/data"
)

func newHadoopFS(t *testing.T) *FS {
	t.Helper()
	fs := New("dn1")
	if err := fs.MkdirAll("/hadoop/dfs/data"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateWriteRead(t *testing.T) {
	fs := newHadoopFS(t)
	if err := fs.WriteFile("/hadoop/dfs/data/blk_1", data.Bytes("hello block")); err != nil {
		t.Fatal(err)
	}
	s, err := fs.ReadAt("/hadoop/dfs/data/blk_1", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(s.Bytes()); got != "block" {
		t.Fatalf("read = %q", got)
	}
	node, err := fs.Stat("/hadoop/dfs/data/blk_1")
	if err != nil {
		t.Fatal(err)
	}
	if node.Size() != 11 || node.IsDir() {
		t.Fatalf("stat = size %d isDir %v", node.Size(), node.IsDir())
	}
	if fs.FileCount() != 1 {
		t.Fatalf("FileCount = %d", fs.FileCount())
	}
}

func TestAppendAccumulates(t *testing.T) {
	fs := newHadoopFS(t)
	if _, err := fs.Create("/hadoop/dfs/data/blk_2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fs.Append("/hadoop/dfs/data/blk_2", data.Bytes(fmt.Sprintf("part%d|", i))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := fs.ReadAt("/hadoop/dfs/data/blk_2", 0, 18)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(s.Bytes()); got != "part0|part1|part2|" {
		t.Fatalf("read = %q", got)
	}
}

func TestErrors(t *testing.T) {
	fs := newHadoopFS(t)
	if _, err := fs.ReadAt("/nope", 0, 1); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing file error = %v", err)
	}
	if _, err := fs.Create("/no/parents/here"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing parent error = %v", err)
	}
	if err := fs.WriteFile("/hadoop", data.Bytes("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write to dir error = %v", err)
	}
	if err := fs.WriteFile("/hadoop/dfs/data/f", data.Bytes("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/hadoop/dfs/data/f"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create error = %v", err)
	}
	if _, err := fs.ReadAt("/hadoop/dfs/data/f", 2, 5); !errors.Is(err, ErrRange) {
		t.Fatalf("range error = %v", err)
	}
	if _, err := fs.List("/hadoop/dfs/data/f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("list file error = %v", err)
	}
	if err := fs.Remove("/hadoop"); err == nil {
		t.Fatal("removing non-empty dir succeeded")
	}
}

func TestRemoveAndRename(t *testing.T) {
	fs := newHadoopFS(t)
	if err := fs.WriteFile("/hadoop/dfs/data/blk_tmp", data.Bytes("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/hadoop/dfs/data/blk_tmp", "/hadoop/dfs/data/blk_final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/hadoop/dfs/data/blk_tmp"); !errors.Is(err, ErrNotExist) {
		t.Fatal("old name still exists after rename")
	}
	if _, err := fs.Stat("/hadoop/dfs/data/blk_final"); err != nil {
		t.Fatal("new name missing after rename")
	}
	if err := fs.Remove("/hadoop/dfs/data/blk_final"); err != nil {
		t.Fatal(err)
	}
	if fs.FileCount() != 0 {
		t.Fatalf("FileCount = %d after remove", fs.FileCount())
	}
}

func TestListSorted(t *testing.T) {
	fs := newHadoopFS(t)
	for _, name := range []string{"blk_9", "blk_1", "blk_5"} {
		if err := fs.WriteFile("/hadoop/dfs/data/"+name, data.Bytes("x")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.List("/hadoop/dfs/data")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"blk_1", "blk_5", "blk_9"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v", names)
		}
	}
}

func TestMountSnapshotStaleness(t *testing.T) {
	fs := newHadoopFS(t)
	if err := fs.WriteFile("/hadoop/dfs/data/blk_old", data.Bytes("old-block")); err != nil {
		t.Fatal(err)
	}
	m := MountRO(fs)

	// Pre-mount file is readable through the mount.
	s, err := m.ReadAt("/hadoop/dfs/data/blk_old", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Bytes()) != "old-block" {
		t.Fatalf("mount read = %q", s.Bytes())
	}

	// A file created after the mount is invisible (stale dentry cache).
	if err := fs.WriteFile("/hadoop/dfs/data/blk_new", data.Bytes("new-block")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt("/hadoop/dfs/data/blk_new", 0, 9); !errors.Is(err, ErrStale) {
		t.Fatalf("stale read error = %v", err)
	}

	// RefreshPath makes exactly that file visible.
	if !m.RefreshPath("/hadoop/dfs/data/blk_new") {
		t.Fatal("RefreshPath reported missing file")
	}
	s, err = m.ReadAt("/hadoop/dfs/data/blk_new", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Bytes()) != "block" {
		t.Fatalf("post-refresh read = %q", s.Bytes())
	}
}

func TestMountSnapshotSizeBound(t *testing.T) {
	fs := newHadoopFS(t)
	if err := fs.WriteFile("/hadoop/dfs/data/blk", data.Bytes("12345")); err != nil {
		t.Fatal(err)
	}
	m := MountRO(fs)
	// Guest appends after the mount; the mount still sees the old size.
	if err := fs.Append("/hadoop/dfs/data/blk", data.Bytes("6789")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt("/hadoop/dfs/data/blk", 0, 9); !errors.Is(err, ErrRange) {
		t.Fatalf("read past snapshot size error = %v", err)
	}
	s, err := m.ReadAt("/hadoop/dfs/data/blk", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Bytes()) != "12345" {
		t.Fatalf("snapshot read = %q", s.Bytes())
	}
	// After refresh the appended bytes are visible.
	m.RefreshPath("/hadoop/dfs/data/blk")
	s, err = m.ReadAt("/hadoop/dfs/data/blk", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Bytes()) != "6789" {
		t.Fatalf("post-refresh append read = %q", s.Bytes())
	}
}

func TestMountSurvivesGuestDelete(t *testing.T) {
	// Like an open dentry reference in Linux: a file the guest deletes
	// remains readable through the stale mount until refresh.
	fs := newHadoopFS(t)
	if err := fs.WriteFile("/hadoop/dfs/data/blk", data.Bytes("ghost")); err != nil {
		t.Fatal(err)
	}
	m := MountRO(fs)
	if err := fs.Remove("/hadoop/dfs/data/blk"); err != nil {
		t.Fatal(err)
	}
	s, err := m.ReadAt("/hadoop/dfs/data/blk", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Bytes()) != "ghost" {
		t.Fatalf("ghost read = %q", s.Bytes())
	}
	if m.RefreshPath("/hadoop/dfs/data/blk") {
		t.Fatal("RefreshPath found deleted file")
	}
	if _, err := m.ReadAt("/hadoop/dfs/data/blk", 0, 5); !errors.Is(err, ErrStale) {
		t.Fatalf("post-refresh ghost read error = %v", err)
	}
}

func TestMountRefreshAll(t *testing.T) {
	fs := newHadoopFS(t)
	m := MountRO(fs)
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/hadoop/dfs/data/blk_%d", i)
		if err := fs.WriteFile(path, data.Bytes("x")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Entries() != 0 {
		t.Fatalf("Entries = %d before refresh", m.Entries())
	}
	m.RefreshAll()
	if m.Entries() != 5 {
		t.Fatalf("Entries = %d after RefreshAll", m.Entries())
	}
	if _, ok := m.Lookup("/hadoop/dfs/data/blk_3"); !ok {
		t.Fatal("Lookup failed after RefreshAll")
	}
}

// Property: for any set of files with pattern content, every file read back
// through both the live FS and a fresh mount matches the written bytes.
func TestRoundTripProperty(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		fs := New("p")
		if err := fs.MkdirAll("/d"); err != nil {
			return false
		}
		type file struct {
			path    string
			content data.Pattern
		}
		var files []file
		for i, sz := range sizes {
			if i >= 8 {
				break
			}
			c := data.Pattern{Seed: seed + uint64(i), Size: int64(sz) + 1}
			path := fmt.Sprintf("/d/f%d", i)
			if err := fs.WriteFile(path, c); err != nil {
				return false
			}
			files = append(files, file{path, c})
		}
		m := MountRO(fs)
		for _, fl := range files {
			live, err := fs.ReadAt(fl.path, 0, fl.content.Size)
			if err != nil {
				return false
			}
			mnt, err := m.ReadAt(fl.path, 0, fl.content.Size)
			if err != nil {
				return false
			}
			want := data.NewSlice(fl.content)
			if !data.Equal(live, want) || !data.Equal(mnt, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
