// Package fsim implements the file system that lives inside a datanode VM's
// disk image, plus the host-side read-only mount that the vRead daemon uses
// to reach it.
//
// The FS is a plain hierarchical inode store (directories, append-only file
// chunks) with no notion of time — the guest kernel and virtio layers charge
// cycles and device I/O around it. What it does model carefully is the
// paper's consistency mechanism: a HostMount takes a *snapshot* of the
// dentry/inode state at mount time (the hypervisor's mount of the image as a
// loop device), so files the guest creates afterwards are invisible to the
// host until Refresh — exactly the staleness that vRead_update exists to fix
// (§3.2, §4 of the paper).
package fsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"vread/internal/data"
)

// Errors returned by FS and HostMount operations.
var (
	ErrNotExist = errors.New("fsim: no such file or directory")
	ErrExist    = errors.New("fsim: file exists")
	ErrIsDir    = errors.New("fsim: is a directory")
	ErrNotDir   = errors.New("fsim: not a directory")
	ErrRange    = errors.New("fsim: read out of range")
	ErrStale    = errors.New("fsim: stale mount (file not in dentry cache)")
)

// Ino is an inode number, unique within one FS.
type Ino int64

// Inode is a file or directory. Files accumulate immutable content chunks
// (append-only, matching HDFS block files); directories map names to inodes.
type Inode struct {
	ino     Ino
	isDir   bool
	chunks  data.Concat
	size    int64
	entries map[string]*Inode
}

// Ino returns the inode number.
func (n *Inode) Ino() Ino { return n.ino }

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.isDir }

// Size returns the file size in bytes (0 for directories).
func (n *Inode) Size() int64 { return n.size }

// FS is one file system instance.
type FS struct {
	name    string
	nextIno Ino
	root    *Inode
	files   int
}

// New creates an empty file system.
func New(name string) *FS {
	fs := &FS{name: name, nextIno: 1}
	fs.root = &Inode{ino: 1, isDir: true, entries: make(map[string]*Inode)}
	return fs
}

// Name returns the FS label.
func (fs *FS) Name() string { return fs.name }

// FileCount returns the number of regular files.
func (fs *FS) FileCount() int { return fs.files }

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// lookup resolves a path to its inode.
func (fs *FS) lookup(path string) (*Inode, error) {
	cur := fs.root
	for _, part := range splitPath(path) {
		if !cur.isDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next, ok := cur.entries[part]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		cur = next
	}
	return cur, nil
}

// lookupParent resolves the directory containing path and the final name.
func (fs *FS) lookupParent(path string) (*Inode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%w: cannot use root here", ErrIsDir)
	}
	dirParts, name := parts[:len(parts)-1], parts[len(parts)-1]
	cur := fs.root
	for _, part := range dirParts {
		next, ok := cur.entries[part]
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		if !next.isDir {
			return nil, "", fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		cur = next
	}
	return cur, name, nil
}

// MkdirAll creates the directory path and all parents.
func (fs *FS) MkdirAll(path string) error {
	cur := fs.root
	for _, part := range splitPath(path) {
		next, ok := cur.entries[part]
		if !ok {
			fs.nextIno++
			next = &Inode{ino: fs.nextIno, isDir: true, entries: make(map[string]*Inode)}
			cur.entries[part] = next
		} else if !next.isDir {
			return fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		cur = next
	}
	return nil
}

// Create makes an empty file. Parents must exist; the file must not.
func (fs *FS) Create(path string) (*Inode, error) {
	dir, name, err := fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if _, ok := dir.entries[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, path)
	}
	fs.nextIno++
	node := &Inode{ino: fs.nextIno}
	dir.entries[name] = node
	fs.files++
	return node, nil
}

// Append adds content to the end of an existing file.
func (fs *FS) Append(path string, c data.Content) error {
	node, err := fs.lookup(path)
	if err != nil {
		return err
	}
	if node.isDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	node.chunks = append(node.chunks, c)
	node.size += c.Len()
	return nil
}

// WriteFile creates (or replaces) a file with the given content.
func (fs *FS) WriteFile(path string, c data.Content) error {
	if node, err := fs.lookup(path); err == nil {
		if node.isDir {
			return fmt.Errorf("%w: %s", ErrIsDir, path)
		}
		node.chunks = data.Concat{c}
		node.size = c.Len()
		return nil
	}
	node, err := fs.Create(path)
	if err != nil {
		return err
	}
	node.chunks = data.Concat{c}
	node.size = c.Len()
	return nil
}

// ReadAt returns the byte window [off, off+n) of the file at path.
func (fs *FS) ReadAt(path string, off, n int64) (data.Slice, error) {
	node, err := fs.lookup(path)
	if err != nil {
		return data.Slice{}, err
	}
	return readInode(node, off, n, node.size, path)
}

func readInode(node *Inode, off, n, limit int64, path string) (data.Slice, error) {
	if node.isDir {
		return data.Slice{}, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if off < 0 || n < 0 || off+n > limit {
		return data.Slice{}, fmt.Errorf("%w: [%d,%d) of %d in %s", ErrRange, off, off+n, limit, path)
	}
	return data.Slice{C: node.chunks, Off: off, N: n}, nil
}

// Stat returns the inode for path.
func (fs *FS) Stat(path string) (*Inode, error) { return fs.lookup(path) }

// Remove deletes a file or empty directory.
func (fs *FS) Remove(path string) error {
	dir, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	node, ok := dir.entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if node.isDir && len(node.entries) > 0 {
		return fmt.Errorf("fsim: directory not empty: %s", path)
	}
	delete(dir.entries, name)
	if !node.isDir {
		fs.files--
	}
	return nil
}

// Rename moves a file or directory. The destination must not exist.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldDir, oldName, err := fs.lookupParent(oldPath)
	if err != nil {
		return err
	}
	node, ok := oldDir.entries[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	newDir, newName, err := fs.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := newDir.entries[newName]; ok {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	delete(oldDir.entries, oldName)
	newDir.entries[newName] = node
	return nil
}

// List returns the sorted entry names of a directory.
func (fs *FS) List(path string) ([]string, error) {
	node, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if !node.isDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	names := make([]string, 0, len(node.entries))
	for name := range node.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Walk visits every regular file (sorted, depth-first) with its full path.
func (fs *FS) Walk(fn func(path string, node *Inode)) {
	fs.walkDir("", fs.root, fn)
}

func (fs *FS) walkDir(prefix string, dir *Inode, fn func(string, *Inode)) {
	names := make([]string, 0, len(dir.entries))
	for name := range dir.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		node := dir.entries[name]
		path := prefix + "/" + name
		if node.isDir {
			fs.walkDir(path, node, fn)
		} else {
			fn(path, node)
		}
	}
}

// ---------------------------------------------------------------------------
// Host-side read-only mount with a snapshot dentry/inode cache.

// MountEntry is one cached dentry: the inode pointer plus the file size at
// snapshot time. Reads through the mount are bounded by the snapshot size
// even if the guest appended since (the hypervisor's cached metadata).
type MountEntry struct {
	Node *Inode
	Size int64
}

// HostMount is the hypervisor's read-only view of a guest FS, as produced by
// losetup/kpartx plus a read-only mount in the paper's prototype.
type HostMount struct {
	fs        *FS
	dentries  map[string]MountEntry
	refreshes int
}

// MountRO snapshots the FS's current files into a new mount.
func MountRO(fs *FS) *HostMount {
	m := &HostMount{fs: fs, dentries: make(map[string]MountEntry)}
	m.RefreshAll()
	m.refreshes = 0
	return m
}

// Lookup consults only the dentry cache (never the live FS).
func (m *HostMount) Lookup(path string) (MountEntry, bool) {
	e, ok := m.dentries[canonical(path)]
	return e, ok
}

// ReadAt reads [off, off+n) of path through the dentry cache. A file created
// after the snapshot returns ErrStale; a read past the snapshot size returns
// ErrRange.
func (m *HostMount) ReadAt(path string, off, n int64) (data.Slice, error) {
	e, ok := m.dentries[canonical(path)]
	if !ok {
		return data.Slice{}, fmt.Errorf("%w: %s", ErrStale, path)
	}
	return readInode(e.Node, off, n, e.Size, path)
}

// RefreshAll re-snapshots every file (a full remount).
func (m *HostMount) RefreshAll() {
	m.refreshes++
	m.dentries = make(map[string]MountEntry)
	m.fs.Walk(func(path string, node *Inode) {
		m.dentries[path] = MountEntry{Node: node, Size: node.size}
	})
}

// RefreshPath updates (or inserts) the dentry for a single path — the cheap
// per-new-block update that vRead_update performs. It reports whether the
// path exists in the live FS.
func (m *HostMount) RefreshPath(path string) bool {
	m.refreshes++
	node, err := m.fs.lookup(path)
	if err != nil || node.isDir {
		delete(m.dentries, canonical(path))
		return false
	}
	m.dentries[canonical(path)] = MountEntry{Node: node, Size: node.size}
	return true
}

// Invalidate empties the dentry cache without touching the live FS — what a
// daemon crash does to the hypervisor's cached metadata. Every path is stale
// (lookups miss, reads return ErrStale) until RefreshPath / RefreshAll
// re-snapshots it, exactly the window vRead_update closes.
func (m *HostMount) Invalidate() {
	m.dentries = make(map[string]MountEntry)
}

// Refreshes returns how many refresh operations have run (fig13 verifies the
// write-path overhead stays negligible).
func (m *HostMount) Refreshes() int { return m.refreshes }

// Entries returns the number of cached dentries.
func (m *HostMount) Entries() int { return len(m.dentries) }

// canonical normalizes a path to the /a/b/c form Walk produces.
func canonical(path string) string {
	parts := splitPath(path)
	return "/" + strings.Join(parts, "/")
}
