package data

import (
	"bytes"
	"testing"
)

// FuzzPatternWindowConsistency: any two ways of materializing the same
// window of a Pattern agree byte for byte.
func FuzzPatternWindowConsistency(f *testing.F) {
	f.Add(uint64(1), int64(0), int64(100))
	f.Add(uint64(999), int64(7), int64(4096))
	f.Add(uint64(0), int64(63), int64(1))
	f.Fuzz(func(t *testing.T, seed uint64, off, n int64) {
		const size = 1 << 16
		if off < 0 || n < 0 || n > size || off > size-n {
			t.Skip()
		}
		p := Pattern{Seed: seed, Size: size}
		whole := make([]byte, n)
		p.ReadAt(whole, off)
		via := NewSlice(p).Sub(off, n).Bytes()
		if !bytes.Equal(whole, via) {
			t.Fatalf("direct and Slice reads differ for seed=%d off=%d n=%d", seed, off, n)
		}
	})
}

// FuzzConcatSplit: splitting content at an arbitrary point and
// concatenating the halves is identity.
func FuzzConcatSplit(f *testing.F) {
	f.Add([]byte("hello world"), 3)
	f.Add([]byte{}, 0)
	f.Add([]byte{1}, 1)
	f.Fuzz(func(t *testing.T, b []byte, cut int) {
		if cut < 0 || cut > len(b) {
			t.Skip()
		}
		c := Concat{Bytes(append([]byte(nil), b[:cut]...)), Bytes(append([]byte(nil), b[cut:]...))}
		if c.Len() != int64(len(b)) {
			t.Fatalf("Len = %d, want %d", c.Len(), len(b))
		}
		got := NewSlice(c).Bytes()
		if !bytes.Equal(got, b) {
			t.Fatalf("split/concat not identity")
		}
	})
}
