// Package data provides the byte-content abstractions that flow through the
// simulated I/O stack.
//
// Every component moves Slices — references to Content plus an offset/length
// window — rather than materialized byte slices, so a simulated 5 GB DFSIO
// job does not memcpy 5 GB of real memory. Content is either literal bytes
// (tests verify end-to-end integrity with them) or a deterministic pattern
// keyed by a seed (benchmark payloads, still verifiable at any byte range).
package data

import (
	"bytes"
	"fmt"
)

// Content is an immutable, random-access byte source.
type Content interface {
	// Len returns the total length in bytes.
	Len() int64
	// ReadAt fills b with the bytes starting at off. It panics if the range
	// [off, off+len(b)) is outside the content; callers slice first.
	ReadAt(b []byte, off int64)
}

// Bytes is literal in-memory content.
type Bytes []byte

// Len implements Content.
func (c Bytes) Len() int64 { return int64(len(c)) }

// ReadAt implements Content.
func (c Bytes) ReadAt(b []byte, off int64) {
	copy(b, c[off:])
}

// Pattern is deterministic pseudo-random content of a given size, generated
// from a seed. Two Patterns with the same seed and size are byte-identical,
// so integrity can be checked without storing the payload.
type Pattern struct {
	Seed uint64
	Size int64
}

// Len implements Content.
func (p Pattern) Len() int64 { return p.Size }

// ReadAt implements Content.
func (p Pattern) ReadAt(b []byte, off int64) {
	for i := range b {
		b[i] = p.byteAt(off + int64(i))
	}
}

// byteAt returns the pattern byte at absolute offset off using a splitmix64
// mix of the seed and the 8-byte lane index.
func (p Pattern) byteAt(off int64) byte {
	lane := uint64(off >> 3)
	x := p.Seed + 0x9e3779b97f4a7c15*(lane+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return byte(x >> (8 * uint(off&7)))
}

// Zero is all-zero content of a given size.
type Zero int64

// Len implements Content.
func (z Zero) Len() int64 { return int64(z) }

// ReadAt implements Content.
func (z Zero) ReadAt(b []byte, off int64) {
	for i := range b {
		b[i] = 0
	}
}

// Concat is the concatenation of several Contents (how append-only files
// accumulate chunks without copying).
type Concat []Content

// Len implements Content.
func (c Concat) Len() int64 {
	var n int64
	for _, part := range c {
		n += part.Len()
	}
	return n
}

// ReadAt implements Content.
func (c Concat) ReadAt(b []byte, off int64) {
	for _, part := range c {
		if len(b) == 0 {
			return
		}
		n := part.Len()
		if off >= n {
			off -= n
			continue
		}
		take := n - off
		if take > int64(len(b)) {
			take = int64(len(b))
		}
		part.ReadAt(b[:take], off)
		b = b[take:]
		off = 0
	}
	if len(b) > 0 {
		panic("data: Concat.ReadAt past end")
	}
}

// Slice is a window into Content: the unit that moves through the simulated
// stack. Copying a Slice is free; materializing bytes is explicit.
type Slice struct {
	C   Content
	Off int64
	N   int64
}

// NewSlice returns a Slice covering all of c.
func NewSlice(c Content) Slice { return Slice{C: c, N: c.Len()} }

// Len returns the window length.
func (s Slice) Len() int64 { return s.N }

// Sub returns the sub-window [off, off+n) of s.
func (s Slice) Sub(off, n int64) Slice {
	if off < 0 || n < 0 || off+n > s.N {
		panic(fmt.Sprintf("data: Sub(%d,%d) out of window %d", off, n, s.N))
	}
	return Slice{C: s.C, Off: s.Off + off, N: n}
}

// Content adapts the window into a standalone Content (no copying).
func (s Slice) Content() Content {
	if s.Off == 0 && s.C != nil && s.N == s.C.Len() {
		return s.C
	}
	return window{s}
}

type window struct{ s Slice }

func (w window) Len() int64 { return w.s.N }
func (w window) ReadAt(b []byte, off int64) {
	w.s.C.ReadAt(b, w.s.Off+off)
}

// Bytes materializes the window. Intended for tests and small final reads.
func (s Slice) Bytes() []byte {
	b := make([]byte, s.N)
	if s.N > 0 {
		s.C.ReadAt(b, s.Off)
	}
	return b
}

// Equal reports whether two slices have identical bytes (materializing in
// bounded chunks).
func Equal(a, b Slice) bool {
	if a.N != b.N {
		return false
	}
	const chunk = 64 << 10
	bufA := make([]byte, chunk)
	bufB := make([]byte, chunk)
	for off := int64(0); off < a.N; off += chunk {
		n := a.N - off
		if n > chunk {
			n = chunk
		}
		a.C.ReadAt(bufA[:n], a.Off+off)
		b.C.ReadAt(bufB[:n], b.Off+off)
		if !bytes.Equal(bufA[:n], bufB[:n]) {
			return false
		}
	}
	return true
}
