package data

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBytesContent(t *testing.T) {
	c := Bytes("hello world")
	if c.Len() != 11 {
		t.Fatalf("Len = %d", c.Len())
	}
	b := make([]byte, 5)
	c.ReadAt(b, 6)
	if string(b) != "world" {
		t.Fatalf("ReadAt = %q", b)
	}
}

func TestPatternDeterministic(t *testing.T) {
	p1 := Pattern{Seed: 42, Size: 1024}
	p2 := Pattern{Seed: 42, Size: 1024}
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	p1.ReadAt(a, 0)
	p2.ReadAt(b, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed patterns differ")
	}
	p3 := Pattern{Seed: 43, Size: 1024}
	p3.ReadAt(b, 0)
	if bytes.Equal(a, b) {
		t.Fatal("different-seed patterns identical")
	}
}

func TestPatternOffsetConsistency(t *testing.T) {
	// Reading [100,200) in one call equals reading it byte by byte.
	p := Pattern{Seed: 7, Size: 1 << 20}
	whole := make([]byte, 100)
	p.ReadAt(whole, 100)
	for i := 0; i < 100; i++ {
		one := make([]byte, 1)
		p.ReadAt(one, 100+int64(i))
		if one[0] != whole[i] {
			t.Fatalf("byte %d differs: %x vs %x", i, one[0], whole[i])
		}
	}
}

func TestZero(t *testing.T) {
	z := Zero(16)
	b := []byte{1, 2, 3, 4}
	z.ReadAt(b, 4)
	for _, v := range b {
		if v != 0 {
			t.Fatal("Zero content returned nonzero")
		}
	}
}

func TestConcat(t *testing.T) {
	c := Concat{Bytes("abc"), Bytes("de"), Bytes("fghi")}
	if c.Len() != 9 {
		t.Fatalf("Len = %d", c.Len())
	}
	b := make([]byte, 9)
	c.ReadAt(b, 0)
	if string(b) != "abcdefghi" {
		t.Fatalf("full read = %q", b)
	}
	// Cross-boundary read.
	b = make([]byte, 4)
	c.ReadAt(b, 2)
	if string(b) != "cdef" {
		t.Fatalf("cross read = %q", b)
	}
}

func TestSliceSubAndBytes(t *testing.T) {
	s := NewSlice(Bytes("0123456789"))
	sub := s.Sub(3, 4)
	if got := string(sub.Bytes()); got != "3456" {
		t.Fatalf("Sub bytes = %q", got)
	}
	subsub := sub.Sub(1, 2)
	if got := string(subsub.Bytes()); got != "45" {
		t.Fatalf("nested Sub = %q", got)
	}
}

func TestSliceSubOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSlice(Bytes("abc")).Sub(1, 3)
}

func TestEqual(t *testing.T) {
	a := NewSlice(Pattern{Seed: 5, Size: 200_000})
	b := NewSlice(Pattern{Seed: 5, Size: 200_000})
	if !Equal(a, b) {
		t.Fatal("identical patterns not Equal")
	}
	c := NewSlice(Pattern{Seed: 6, Size: 200_000})
	if Equal(a, c) {
		t.Fatal("different patterns Equal")
	}
	if Equal(a, a.Sub(0, 100)) {
		t.Fatal("different lengths Equal")
	}
}

// Property: any Sub window of a Concat matches the same window of the
// materialized whole.
func TestConcatWindowProperty(t *testing.T) {
	f := func(parts [][]byte, offRaw, nRaw uint16) bool {
		var c Concat
		var whole []byte
		for _, p := range parts {
			c = append(c, Bytes(p))
			whole = append(whole, p...)
		}
		total := int64(len(whole))
		if total == 0 {
			return true
		}
		off := int64(offRaw) % total
		n := int64(nRaw) % (total - off + 1)
		got := NewSlice(c).Sub(off, n).Bytes()
		return bytes.Equal(got, whole[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pattern reads are window-consistent for arbitrary windows.
func TestPatternWindowProperty(t *testing.T) {
	f := func(seed uint64, offRaw, nRaw uint16) bool {
		p := Pattern{Seed: seed, Size: 1 << 18}
		off := int64(offRaw)
		n := int64(nRaw)
		if off+n > p.Size {
			return true
		}
		whole := make([]byte, n)
		p.ReadAt(whole, off)
		half := n / 2
		a := make([]byte, half)
		b := make([]byte, n-half)
		p.ReadAt(a, off)
		p.ReadAt(b, off+half)
		return bytes.Equal(whole, append(a, b...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
