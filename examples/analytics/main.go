// The paper's §5.2 application studies as one program: an HBase
// PerformanceEvaluation table (scan / sequential read / random read), a
// Hive range select, and a Sqoop export into an external MySQL — all on the
// hybrid 4-VM setup, vanilla vs vRead.
package main

import (
	"fmt"
	"log"

	"vread"
)

func main() {
	opt := vread.Options{Seed: 5, Scale: 0.02}

	t2, err := vread.RunTable2(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(vread.FormatTable2(t2))

	t3, err := vread.RunTable3(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(vread.FormatTable3(t3))

	fmt.Println("\nEvery byte these workloads consumed flowed through the simulated")
	fmt.Println("HDFS — the improvements come purely from vRead's shortcut, not from")
	fmt.Println("modeling shortcuts: turn vRead off and the numbers revert.")
}
