// Live migration (§6 of the paper): vRead keeps working when a datanode VM
// moves between hosts — the daemons' hash tables are updated, the image is
// remounted on the destination, and reads transparently switch from the
// local mount to the daemon-to-daemon RDMA path.
package main

import (
	"fmt"
	"log"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func main() {
	tb := vread.NewTestbed(vread.Options{Seed: 11, VRead: true})
	defer tb.Close()
	tb.Place(vread.Colocated) // all blocks on dn1, co-located with the client

	const fileSize = 64 << 20
	content := data.Pattern{Seed: 1, Size: fileSize}

	measure := func(p *sim.Proc, label string) error {
		start := tb.C.Env.Now()
		r, err := tb.Client.Open(p, "/migr/data")
		if err != nil {
			return err
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, fileSize)
		if err != nil {
			return err
		}
		if !data.Equal(got, data.NewSlice(content)) {
			return fmt.Errorf("%s: bytes corrupted", label)
		}
		elapsed := tb.C.Env.Now() - start
		st := tb.Mgr.Daemon("client").Stats()
		fmt.Printf("%-28s %8.1f MB/s   daemon: local %d MB, remote %d MB, fallbacks %d\n",
			label, metrics.Throughput(fileSize, elapsed), st.BytesLocal>>20, st.BytesRemote>>20, st.OpenMisses)
		return nil
	}

	err := tb.Run("before-migration", time.Hour, func(p *sim.Proc) error {
		if err := tb.Client.WriteFile(p, "/migr/data", content); err != nil {
			return err
		}
		tb.DropAllCaches()
		return measure(p, "co-located (before)")
	})
	if err != nil {
		log.Fatal(err)
	}

	// Live-migrate the datanode VM to host2 (its image lives on the shared
	// storage both hypervisors mount), then update the vRead hash tables —
	// the two steps §6 describes.
	fmt.Println("\n--- live-migrating dn1: host1 → host2 ---")
	tb.C.MigrateVM("dn1", tb.C.Host("host2"))
	tb.Mgr.DatanodeMigrated("dn1", "host1")

	err = tb.Run("after-migration", time.Hour, func(p *sim.Proc) error {
		tb.DropAllCaches()
		return measure(p, "remote (after migration)")
	})
	if err != nil {
		log.Fatal(err)
	}
	// Migrate back with the one-call protocol: MigrateMount quiesces the
	// client rings, moves the VM and its mount, and replays any in-flight
	// descriptors — the cutover is a bounded read-latency blackout, never an
	// error.
	fmt.Println("\n--- live mount migration back: host2 → host1 ---")
	err = tb.Run("migrate-back", time.Hour, func(p *sim.Proc) error {
		mig, err := tb.Mgr.MigrateMount(p, "dn1", "host2", "host1")
		if err != nil {
			return err
		}
		fmt.Printf("blackout %v; %d rings quiesced, %d in-flight descriptors replayed\n",
			mig.Blackout, mig.Quiesced, mig.Captured)
		tb.DropAllCaches()
		return measure(p, "co-located (migrated back)")
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSame file, same client, zero fallbacks: the read path re-routed")
	fmt.Println("through the destination host's daemon over RDMA and back, the")
	fmt.Println("second hop as a single quiesce-move-replay cutover.")
}
