// TestDFSIO on the paper's Figure 10 topology: client+namenode VM and
// datanode VM on host1, a second datanode VM on host2, background lookbusy
// VMs filling both hosts — then the full read / re-read comparison between
// vanilla HDFS and vRead across the three placement scenarios, as a
// MapReduce job with one map task per file.
package main

import (
	"fmt"
	"log"

	"vread"
)

func main() {
	fmt.Println("TestDFSIO on the Figure 10 topology (4-VM hosts, 2.0 GHz, scaled dataset)")
	fmt.Printf("%-11s %-8s %-8s %12s %12s\n", "scenario", "system", "mode", "MB/s", "cpu-ms")

	for _, scenario := range []vread.Scenario{vread.Colocated, vread.Remote, vread.Hybrid} {
		for _, useVRead := range []bool{false, true} {
			rows, err := vread.RunDFSIOPoint(
				vread.Options{Seed: 3, Scale: 0.05},
				scenario, 4, 2_000_000_000, useVRead,
			)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range rows {
				fmt.Printf("%-11s %-8s %-8s %12.1f %12.0f\n",
					r.Scenario, r.System, r.Mode, r.Throughput, r.CPUTimeMs)
			}
		}
	}
	fmt.Println("\npaper: read +20%…+65%, re-read up to +150%, with large CPU savings")
}
