// Quickstart: build the smallest interesting deployment — a client VM and a
// datanode VM co-located on one simulated host — write a file into HDFS,
// then read it back twice: once through vanilla HDFS (the 5-copy virtio
// path of the paper's Figure 1) and once through vRead (the hypervisor
// shortcut of Figure 4). Prints the delay and CPU cost of both.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func main() {
	// A 2 GHz quad-core host with one client VM and one datanode VM, plus
	// a second (empty) host — the paper's minimal co-located setup.
	tb := vread.NewTestbed(vread.Options{Seed: 42, VRead: true})
	defer tb.Close()
	tb.Place(vread.Colocated)

	const fileSize = 256 << 20
	content := data.Pattern{Seed: 7, Size: fileSize}

	type result struct {
		name    string
		elapsed time.Duration
		cycles  int64
	}
	var results []result

	err := tb.Run("quickstart", time.Hour, func(p *sim.Proc) error {
		// Write 256 MB into HDFS through the datanode pipeline.
		if err := tb.Client.WriteFile(p, "/quickstart/data", content); err != nil {
			return err
		}

		read := func(name string) error {
			tb.DropAllCaches()
			tb.C.Reg.MarkWindow(tb.C.Env.Now())
			start := tb.C.Env.Now()
			r, err := tb.Client.Open(p, "/quickstart/data")
			if err != nil {
				return err
			}
			defer r.Close(p)
			var got int64
			for {
				s, err := r.Read(p, 1<<20)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					return err
				}
				got += s.Len()
			}
			if got != fileSize {
				return fmt.Errorf("read %d of %d bytes", got, fileSize)
			}
			results = append(results, result{
				name:    name,
				elapsed: tb.C.Env.Now() - start,
				cycles:  tb.C.Reg.WindowEntityCycles("client") + tb.C.Reg.WindowEntityCycles("dn1") + tb.C.Reg.WindowEntityCycles(vread.DaemonEntity("host1")),
			})
			return nil
		}

		// Vanilla first (block reader uninstalled), then vRead.
		tb.Client.SetBlockReader(nil)
		if err := read("vanilla"); err != nil {
			return err
		}
		tb.Client.SetBlockReader(tb.Lib)
		return read("vRead")
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Quickstart — 256 MB cold read from a co-located datanode VM")
	fmt.Printf("%-8s %12s %14s %16s\n", "system", "time", "throughput", "CPU megacycles")
	for _, r := range results {
		fmt.Printf("%-8s %12v %11.1f MB/s %16.0f\n",
			r.name, r.elapsed.Round(time.Millisecond), metrics.Throughput(fileSize, r.elapsed), float64(r.cycles)/1e6)
	}
	v, w := results[0], results[1]
	fmt.Printf("\nvRead: %.0f%% faster, %.0f%% fewer CPU cycles (same bytes, verified by the test suite)\n",
		(float64(v.elapsed)/float64(w.elapsed)-1)*100,
		(1-float64(w.cycles)/float64(v.cycles))*100)
}
