// The §3 generalization, end to end: the same vRead daemons that serve
// HDFS serve a QFS/GFS-style chunk file system — because both store their
// data as regular files inside datanode VMs, and vRead reads *files from
// disk images*, not HDFS blocks specifically.
package main

import (
	"fmt"
	"log"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func main() {
	c := vread.NewCluster(21, vread.ClusterParams{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	cs1VM := h1.AddVM("cs1", metrics.TagDatanodeApp)
	cs2VM := h2.AddVM("cs2", metrics.TagDatanodeApp)

	// A QFS deployment: metaserver, two chunk servers, one client.
	ms := vread.NewQFSMetaServer(c.Env, vread.QFSConfig{ChunkSize: 16 << 20})
	cs1 := vread.StartQFSChunkServer(c.Env, ms, cs1VM.Kernel)
	cs2 := vread.StartQFSChunkServer(c.Env, ms, cs2VM.Kernel)
	client := vread.NewQFSClient(c.Env, ms, clientVM.Kernel)

	// vRead over it: mount the chunk servers' images, enable the client,
	// wire libvread into the QFS client. The wiring happens before any
	// writes so the metaserver's chunk events keep the daemon mounts fresh
	// (the §3.2 synchronization, like the HDFS namenode's).
	mgr := vread.NewVReadManager(c, nil, vread.VReadConfig{})
	mgr.MountDatanode("cs1")
	mgr.MountDatanode("cs2")
	lib := mgr.EnableClient("client")
	vread.UseVReadWithQFS(mgr, ms, client, lib)
	client.SetPathReader(nil) // start with the vanilla path for comparison

	const fileSize = 96 << 20 // 6 chunks striped over both servers
	content := data.Pattern{Seed: 4, Size: fileSize}
	read := func(p *sim.Proc, label string) error {
		start := c.Env.Now()
		got, err := client.ReadFile(p, "/gen/data")
		if err != nil {
			return err
		}
		if !data.Equal(got, data.NewSlice(content)) {
			return fmt.Errorf("%s: corrupted", label)
		}
		elapsed := c.Env.Now() - start
		fmt.Printf("%-22s %8.1f MB/s   chunk servers streamed %d MB over TCP\n",
			label, metrics.Throughput(fileSize, elapsed),
			(cs1.ServedBytes()+cs2.ServedBytes())>>20)
		return nil
	}

	done := false
	c.Go("driver", func(p *sim.Proc) {
		if err := client.WriteFile(p, "/gen/data", content); err != nil {
			log.Fatal(err)
		}
		dropAll(c)
		if err := read(p, "QFS vanilla"); err != nil {
			log.Fatal(err)
		}
		client.SetPathReader(vread.QFSPathReader(lib)) // reinstall the shortcut
		dropAll(c)
		if err := read(p, "QFS + vRead"); err != nil {
			log.Fatal(err)
		}
		done = true
	})
	if err := c.Env.RunUntil(time.Hour); err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("driver did not finish")
	}
	st := mgr.Daemon("client").Stats()
	fmt.Printf("\nvRead daemons served %d MB local + %d MB remote; the chunk servers'\n",
		st.BytesLocal>>20, st.BytesRemote>>20)
	fmt.Println("TCP byte count did not move during the second read — same shortcut,")
	fmt.Println("different distributed file system (§3's generality claim).")
}

func dropAll(c *vread.Cluster) {
	for _, vm := range c.AllVMs() {
		vm.Kernel.DropCaches()
	}
	c.Host("host1").Cache.DropAll()
	c.Host("host2").Cache.DropAll()
}
