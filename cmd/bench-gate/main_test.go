package main

import (
	"strings"
	"testing"
)

func cfg() gateConfig {
	return gateConfig{MaxNsRegress: 0.15, MinNsFloor: 100, MaxSpeedupRegress: 0.15, NumCPU: 8}
}

func report(ns, allocs float64, speedup float64, procs, shards int) *benchReport {
	r := &benchReport{
		Engine: []engineEntry{{Name: "engine/x", NsPerOp: ns, AllocsPerOp: allocs}},
	}
	if speedup != 0 {
		r.Experiments = []experimentEntry{{
			Name: "shard-grid/parallel", SpeedupVsSerial: speedup, GoMaxProcs: procs, Shards: shards,
		}}
	}
	return r
}

func assertFailures(t *testing.T, lines []string, failures, want int) {
	t.Helper()
	if failures != want {
		t.Fatalf("failures = %d, want %d\n%s", failures, want, strings.Join(lines, "\n"))
	}
}

func TestGateAllocsIncreaseFails(t *testing.T) {
	lines, failures := gate(report(500, 0, 0, 0, 0), report(500, 1, 0, 0, 0), cfg())
	assertFailures(t, lines, failures, 1)
}

func TestGateNsRegressionFailsAboveFloor(t *testing.T) {
	lines, failures := gate(report(500, 0, 0, 0, 0), report(600, 0, 0, 0, 0), cfg())
	assertFailures(t, lines, failures, 1)
	// Under the floor the same ratio passes: jitter territory.
	lines, failures = gate(report(50, 0, 0, 0, 0), report(60, 0, 0, 0, 0), cfg())
	assertFailures(t, lines, failures, 0)
}

func TestGateMissingEngineEntryFails(t *testing.T) {
	cand := &benchReport{Engine: []engineEntry{{Name: "engine/other"}}}
	lines, failures := gate(report(500, 0, 0, 0, 0), cand, cfg())
	assertFailures(t, lines, failures, 1)
}

func TestGateSpeedupRegressionFails(t *testing.T) {
	base := report(500, 0, 3.0, 8, 8)
	lines, failures := gate(base, report(500, 0, 2.0, 8, 8), cfg())
	assertFailures(t, lines, failures, 1)
	// Within the threshold passes.
	lines, failures = gate(base, report(500, 0, 2.9, 8, 8), cfg())
	assertFailures(t, lines, failures, 0)
}

func TestGateSpeedupSkippedOnSingleCPU(t *testing.T) {
	c := cfg()
	c.NumCPU = 1
	lines, failures := gate(report(500, 0, 3.0, 8, 8), report(500, 0, 0.5, 1, 2), c)
	assertFailures(t, lines, failures, 0)
	if !strings.Contains(strings.Join(lines, "\n"), "single-CPU") {
		t.Fatalf("no single-CPU skip note:\n%s", strings.Join(lines, "\n"))
	}
}

func TestGateSpeedupSkippedOnProcsMismatch(t *testing.T) {
	lines, failures := gate(report(500, 0, 3.0, 8, 8), report(500, 0, 1.1, 4, 4), cfg())
	assertFailures(t, lines, failures, 0)
	if !strings.Contains(strings.Join(lines, "\n"), "go_maxprocs differ") {
		t.Fatalf("no procs-mismatch skip note:\n%s", strings.Join(lines, "\n"))
	}
}

func TestGateSpeedupMissingRowFails(t *testing.T) {
	lines, failures := gate(report(500, 0, 3.0, 8, 8), report(500, 0, 0, 0, 0), cfg())
	assertFailures(t, lines, failures, 1)
}

// TestGateBaselineWithoutSpeedupRowsIgnoresCandidate: older snapshots predate
// the sharded rows; their absence must not fail fresh candidates that have
// them (new rows pass without a baseline).
func TestGateBaselineWithoutSpeedupRowsIgnoresCandidate(t *testing.T) {
	lines, failures := gate(report(500, 0, 0, 0, 0), report(500, 0, 2.5, 8, 8), cfg())
	assertFailures(t, lines, failures, 0)
}
