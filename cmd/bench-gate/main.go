// Command bench-gate compares a fresh benchmark run against the newest
// committed BENCH_<n>.json snapshot and fails on performance regressions in
// the event-engine microbenchmarks and the parallel-engine speedups.
//
// Usage:
//
//	bench-gate -candidate fresh.json [-baseline BENCH_2.json]
//	           [-max-ns-regress 0.15] [-min-ns-floor 100]
//	           [-max-speedup-regress 0.15]
//
// Without -baseline the newest BENCH_<n>.json (highest n) in the current
// directory is used. The `engine` entries are always compared: their
// ns_per_op is per-operation and therefore comparable between a full
// `make bench` run and the abbreviated -bench-short candidate, while
// experiment wall_ms scales with the dataset and is not.
//
// Gate rules, per engine entry matched by name:
//
//   - allocs_per_op above the baseline fails outright — allocation counts are
//     deterministic, so any increase is a real regression.
//   - ns_per_op above baseline × (1 + max-ns-regress) fails, unless both
//     sides sit under min-ns-floor nanoseconds, where scheduler jitter
//     routinely exceeds any ratio threshold.
//   - an entry present in the baseline but missing from the candidate fails:
//     a renamed or dropped benchmark silently un-gates itself otherwise.
//
// Experiment entries that recorded a speedup_vs_serial and a shard count
// (the sharded-engine rows) are gated too, with the same missing-entry rule:
// the candidate's speedup may not fall more than max-speedup-regress below
// the baseline's. Speedup is only meaningful when the machine can actually
// run shards in parallel and when both reports saw the same parallelism, so
// the check is skipped — with a note — on single-CPU machines and when the
// rows' go_maxprocs differ.
//
// New entries in the candidate pass (they have no baseline yet), and a
// missing baseline file passes with a note — the first run of a fresh clone
// has nothing to gate against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// engineEntry mirrors the engine rows of the BENCH_<n>.json schema written
// by vread-bench; unrelated fields are ignored on decode.
type engineEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// experimentEntry mirrors the experiment rows; only the speedup-bearing
// fields matter to the gate.
type experimentEntry struct {
	Name            string  `json:"name"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	GoMaxProcs      int     `json:"go_maxprocs"`
	Shards          int     `json:"shards"`
}

type benchReport struct {
	Engine      []engineEntry     `json:"engine"`
	Experiments []experimentEntry `json:"experiments"`
}

// gateConfig carries the thresholds plus the environment the decision may
// depend on (CPU count injected so tests can pin it).
type gateConfig struct {
	MaxNsRegress      float64
	MinNsFloor        float64
	MaxSpeedupRegress float64
	NumCPU            int
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "", "baseline BENCH json (default: newest BENCH_<n>.json in the current directory)")
	candidatePath := flag.String("candidate", "", "fresh benchmark report to gate (required)")
	maxNsRegress := flag.Float64("max-ns-regress", 0.15, "maximum allowed fractional ns_per_op regression")
	minNsFloor := flag.Float64("min-ns-floor", 100, "skip the ns_per_op ratio check when both sides are under this many ns")
	maxSpeedupRegress := flag.Float64("max-speedup-regress", 0.15, "maximum allowed fractional speedup_vs_serial regression on multi-CPU machines")
	flag.Parse()

	if *candidatePath == "" {
		return fmt.Errorf("-candidate is required")
	}
	if *baselinePath == "" {
		newest, err := newestBaseline(".")
		if err != nil {
			return err
		}
		if newest == "" {
			fmt.Println("bench-gate: no BENCH_<n>.json baseline found — nothing to gate against, passing")
			return nil
		}
		*baselinePath = newest
	}

	baseline, err := loadReport(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	candidate, err := loadReport(*candidatePath)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}

	cfg := gateConfig{
		MaxNsRegress:      *maxNsRegress,
		MinNsFloor:        *minNsFloor,
		MaxSpeedupRegress: *maxSpeedupRegress,
		NumCPU:            runtime.NumCPU(),
	}
	fmt.Printf("bench-gate: %s (candidate) vs %s (baseline), ns threshold +%.0f%%, floor %gns, speedup threshold -%.0f%%\n",
		*candidatePath, *baselinePath, cfg.MaxNsRegress*100, cfg.MinNsFloor, cfg.MaxSpeedupRegress*100)

	lines, failures := gate(baseline, candidate, cfg)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", failures)
	}
	fmt.Println("bench-gate: no regressions")
	return nil
}

// gate applies every rule and returns the report lines plus the failure
// count. Pure: no flags, clocks, or I/O, so tests drive it directly.
func gate(baseline, candidate *benchReport, cfg gateConfig) (lines []string, failures int) {
	byName := map[string]engineEntry{}
	for _, e := range candidate.Engine {
		byName[e.Name] = e
	}

	for _, base := range baseline.Engine {
		cand, ok := byName[base.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  FAIL %-24s missing from candidate (renamed or dropped?)", base.Name))
			failures++
			continue
		}
		verdict := "ok  "
		var notes []string
		if cand.AllocsPerOp > base.AllocsPerOp {
			verdict = "FAIL"
			notes = append(notes, fmt.Sprintf("allocs/op %.0f -> %.0f", base.AllocsPerOp, cand.AllocsPerOp))
			failures++
		}
		limit := base.NsPerOp * (1 + cfg.MaxNsRegress)
		if cand.NsPerOp > limit && !(base.NsPerOp < cfg.MinNsFloor && cand.NsPerOp < cfg.MinNsFloor) {
			if verdict == "ok  " {
				failures++
			}
			verdict = "FAIL"
			notes = append(notes, fmt.Sprintf("ns/op %.0f -> %.0f (limit %.0f)", base.NsPerOp, cand.NsPerOp, limit))
		}
		line := fmt.Sprintf("  %s %-24s ns/op %6.0f -> %6.0f   allocs/op %2.0f -> %2.0f",
			verdict, base.Name, base.NsPerOp, cand.NsPerOp, base.AllocsPerOp, cand.AllocsPerOp)
		for _, n := range notes {
			line += "   [" + n + "]"
		}
		lines = append(lines, line)
	}
	for _, e := range candidate.Engine {
		if !inBaseline(baseline.Engine, e.Name) {
			lines = append(lines, fmt.Sprintf("  new  %-24s ns/op %6.0f   allocs/op %2.0f (no baseline yet)",
				e.Name, e.NsPerOp, e.AllocsPerOp))
		}
	}

	sl, sf := gateSpeedups(baseline, candidate, cfg)
	return append(lines, sl...), failures + sf
}

// gateSpeedups compares the parallel-engine rows — baseline experiment
// entries that recorded both a speedup_vs_serial and a shard count.
func gateSpeedups(baseline, candidate *benchReport, cfg gateConfig) (lines []string, failures int) {
	byName := map[string]experimentEntry{}
	for _, e := range candidate.Experiments {
		byName[e.Name] = e
	}
	for _, base := range baseline.Experiments {
		if base.SpeedupVsSerial == 0 || base.Shards == 0 {
			continue
		}
		cand, ok := byName[base.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  FAIL %-24s missing from candidate (renamed or dropped?)", base.Name))
			failures++
			continue
		}
		switch {
		case cfg.NumCPU <= 1:
			lines = append(lines, fmt.Sprintf("  skip %-24s speedup %.2fx -> %.2fx (single-CPU machine: parallel speedup not measurable)",
				base.Name, base.SpeedupVsSerial, cand.SpeedupVsSerial))
		case cand.GoMaxProcs != base.GoMaxProcs:
			lines = append(lines, fmt.Sprintf("  skip %-24s speedup %.2fx@%dP -> %.2fx@%dP (go_maxprocs differ: not comparable)",
				base.Name, base.SpeedupVsSerial, base.GoMaxProcs, cand.SpeedupVsSerial, cand.GoMaxProcs))
		default:
			floor := base.SpeedupVsSerial * (1 - cfg.MaxSpeedupRegress)
			verdict := "ok  "
			note := ""
			if cand.SpeedupVsSerial < floor {
				verdict = "FAIL"
				note = fmt.Sprintf("   [speedup %.2fx -> %.2fx (floor %.2fx)]", base.SpeedupVsSerial, cand.SpeedupVsSerial, floor)
				failures++
			}
			lines = append(lines, fmt.Sprintf("  %s %-24s speedup %.2fx -> %.2fx   shards %d -> %d%s",
				verdict, base.Name, base.SpeedupVsSerial, cand.SpeedupVsSerial, base.Shards, cand.Shards, note))
		}
	}
	return lines, failures
}

func inBaseline(entries []engineEntry, name string) bool {
	for _, e := range entries {
		if e.Name == name {
			return true
		}
	}
	return false
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Engine) == 0 {
		return nil, fmt.Errorf("%s: no engine entries", path)
	}
	return &r, nil
}

var benchName = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// newestBaseline returns the BENCH_<n>.json with the highest n in dir, or ""
// if none exists. Numeric order, not mtime: `make bench` numbers snapshots
// monotonically, and file times do not survive a git checkout.
func newestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = e.Name(), n
	}
	return best, nil
}
