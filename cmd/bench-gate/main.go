// Command bench-gate compares a fresh benchmark run against the newest
// committed BENCH_<n>.json snapshot and fails on performance regressions in
// the event-engine microbenchmarks.
//
// Usage:
//
//	bench-gate -candidate fresh.json [-baseline BENCH_2.json]
//	           [-max-ns-regress 0.15] [-min-ns-floor 100]
//
// Without -baseline the newest BENCH_<n>.json (highest n) in the current
// directory is used. Only the `engine` entries are compared: their ns_per_op
// is per-operation and therefore comparable between a full `make bench` run
// and the abbreviated -bench-short candidate, while experiment wall_ms scales
// with the dataset and is not.
//
// Gate rules, per engine entry matched by name:
//
//   - allocs_per_op above the baseline fails outright — allocation counts are
//     deterministic, so any increase is a real regression.
//   - ns_per_op above baseline × (1 + max-ns-regress) fails, unless both
//     sides sit under min-ns-floor nanoseconds, where scheduler jitter
//     routinely exceeds any ratio threshold.
//   - an entry present in the baseline but missing from the candidate fails:
//     a renamed or dropped benchmark silently un-gates itself otherwise.
//
// New entries in the candidate pass (they have no baseline yet), and a
// missing baseline file passes with a note — the first run of a fresh clone
// has nothing to gate against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// engineEntry mirrors the engine rows of the BENCH_<n>.json schema written
// by vread-bench; unrelated fields are ignored on decode.
type engineEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchReport struct {
	Engine []engineEntry `json:"engine"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "", "baseline BENCH json (default: newest BENCH_<n>.json in the current directory)")
	candidatePath := flag.String("candidate", "", "fresh benchmark report to gate (required)")
	maxNsRegress := flag.Float64("max-ns-regress", 0.15, "maximum allowed fractional ns_per_op regression")
	minNsFloor := flag.Float64("min-ns-floor", 100, "skip the ns_per_op ratio check when both sides are under this many ns")
	flag.Parse()

	if *candidatePath == "" {
		return fmt.Errorf("-candidate is required")
	}
	if *baselinePath == "" {
		newest, err := newestBaseline(".")
		if err != nil {
			return err
		}
		if newest == "" {
			fmt.Println("bench-gate: no BENCH_<n>.json baseline found — nothing to gate against, passing")
			return nil
		}
		*baselinePath = newest
	}

	baseline, err := loadReport(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	candidate, err := loadReport(*candidatePath)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}

	fmt.Printf("bench-gate: %s (candidate) vs %s (baseline), ns threshold +%.0f%%, floor %gns\n",
		*candidatePath, *baselinePath, *maxNsRegress*100, *minNsFloor)

	byName := map[string]engineEntry{}
	for _, e := range candidate.Engine {
		byName[e.Name] = e
	}

	failures := 0
	for _, base := range baseline.Engine {
		cand, ok := byName[base.Name]
		if !ok {
			fmt.Printf("  FAIL %-24s missing from candidate (renamed or dropped?)\n", base.Name)
			failures++
			continue
		}
		verdict := "ok  "
		var notes []string
		if cand.AllocsPerOp > base.AllocsPerOp {
			verdict = "FAIL"
			notes = append(notes, fmt.Sprintf("allocs/op %.0f -> %.0f", base.AllocsPerOp, cand.AllocsPerOp))
			failures++
		}
		limit := base.NsPerOp * (1 + *maxNsRegress)
		if cand.NsPerOp > limit && !(base.NsPerOp < *minNsFloor && cand.NsPerOp < *minNsFloor) {
			if verdict == "ok  " {
				failures++
			}
			verdict = "FAIL"
			notes = append(notes, fmt.Sprintf("ns/op %.0f -> %.0f (limit %.0f)", base.NsPerOp, cand.NsPerOp, limit))
		}
		line := fmt.Sprintf("  %s %-24s ns/op %6.0f -> %6.0f   allocs/op %2.0f -> %2.0f",
			verdict, base.Name, base.NsPerOp, cand.NsPerOp, base.AllocsPerOp, cand.AllocsPerOp)
		for _, n := range notes {
			line += "   [" + n + "]"
		}
		fmt.Println(line)
	}
	for _, e := range candidate.Engine {
		if !inBaseline(baseline.Engine, e.Name) {
			fmt.Printf("  new  %-24s ns/op %6.0f   allocs/op %2.0f (no baseline yet)\n",
				e.Name, e.NsPerOp, e.AllocsPerOp)
		}
	}

	if failures > 0 {
		return fmt.Errorf("%d engine benchmark(s) regressed", failures)
	}
	fmt.Println("bench-gate: no regressions")
	return nil
}

func inBaseline(entries []engineEntry, name string) bool {
	for _, e := range entries {
		if e.Name == name {
			return true
		}
	}
	return false
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Engine) == 0 {
		return nil, fmt.Errorf("%s: no engine entries", path)
	}
	return &r, nil
}

var benchName = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// newestBaseline returns the BENCH_<n>.json with the highest n in dir, or ""
// if none exists. Numeric order, not mtime: `make bench` numbers snapshots
// monotonically, and file times do not survive a git checkout.
func newestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = e.Name(), n
	}
	return best, nil
}
