package main

import (
	"testing"
)

// TestUnknownAnalyzerListingGolden pins the "have:" listing users see on a
// typo: all eleven analyzers, sorted, so the list is scannable and adding an
// analyzer shows up here as a deliberate golden change.
func TestUnknownAnalyzerListingGolden(t *testing.T) {
	_, err := selectAnalyzers("nope")
	if err == nil {
		t.Fatal("selectAnalyzers accepted an unknown name")
	}
	const golden = `unknown analyzer "nope" (have: determinism, errdiscipline, faultpoint, guesttaint, hotalloc, lockorder, lockpair, lpowner, simdiscipline, tracecharge, unitflow)`
	if err.Error() != golden {
		t.Fatalf("listing drifted from golden:\ngot  %s\nwant %s", err, golden)
	}
}

// TestVetModeSkipsProgramAnalyzers checks the vet-protocol path cleanly
// drops the whole-program analyzers — vet hands the tool one package at a
// time, so anything needing the cross-package call graph cannot run there —
// and keeps every per-package one.
func TestVetModeSkipsProgramAnalyzers(t *testing.T) {
	suite, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	kept := map[string]bool{}
	for _, a := range perPackage(suite) {
		if a.RunProgram != nil {
			t.Errorf("per-package filter kept program analyzer %s", a.Name)
		}
		kept[a.Name] = true
	}
	wantSkipped := []string{"lpowner", "guesttaint", "unitflow", "hotalloc", "lockorder", "faultpoint", "errdiscipline"}
	for _, name := range wantSkipped {
		if kept[name] {
			t.Errorf("program analyzer %s must be skipped under go vet -vettool", name)
		}
	}
	wantKept := []string{"determinism", "simdiscipline", "lockpair", "tracecharge"}
	for _, name := range wantKept {
		if !kept[name] {
			t.Errorf("per-package analyzer %s missing from the vet-mode subset", name)
		}
	}
	if len(kept) != len(wantKept) {
		t.Errorf("vet-mode subset has %d analyzers, want %d: %v", len(kept), len(wantKept), kept)
	}
}
