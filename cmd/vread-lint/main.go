// vread-lint is the multichecker for the simulator's invariant analyzers:
//
//	determinism    no wall clock, no unseeded math/rand, no map-order output
//	simdiscipline  no raw goroutines/channels/sync/timers outside internal/sim
//	lockpair       every ring spinlock acquire released on all paths
//	tracecharge    every span ended on all paths; no dropped trace contexts
//	hotalloc       //lint:hotpath functions (and their callees) never allocate
//	lockorder      sim.Mutex acquisition order is acyclic; no double-acquire
//	faultpoint     fault-point declarations, Eval sites, and tests agree
//	errdiscipline  core errors are typed or %w-wrapped; compared with errors.Is
//	guesttaint     guest-written ring values pass a //lint:sanitizer before sinks
//	unitflow       cycles reach sim time only via //lint:converter helpers
//	lpowner        LP state stays on its Env; cross-LP only via LP.Send/coordinator
//
// Standalone:
//
//	vread-lint ./...                 # lint packages, exit 1 on findings
//	vread-lint -list ./...           # findings as file:line for editor jumps
//	vread-lint -json ./...           # findings as versioned, stable JSON
//	vread-lint -run lockpair ./...   # subset of analyzers
//	vread-lint -unused-allow ./...   # also flag stale //lint:allow comments
//
// As a vet tool (the go vet driver handles caching and test packages;
// whole-program analyzers are skipped because vet shows the tool one
// package at a time):
//
//	go vet -vettool=$(pwd)/bin/vread-lint ./...
//
// Suppress a deliberate violation with a trailing or preceding comment:
//
//	//lint:allow determinism(reason the wall clock is safe here)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vread/internal/analysis"
	"vread/internal/analysis/all"
)

// version participates in go vet's content-based caching (-V=full).
const version = "v4"

func main() {
	flagV := flag.String("V", "", "print version (go vet protocol)")
	flagFlags := flag.Bool("flags", false, "describe flags as JSON (go vet protocol)")
	flagList := flag.Bool("list", false, "print findings as file:line only")
	flagJSON := flag.Bool("json", false, "print findings as versioned JSON on stdout")
	flagRun := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	flagUnused := flag.Bool("unused-allow", false, "also report //lint:allow comments that suppress nothing (full suite only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vread-lint [-list] [-json] [-run names] [-unused-allow] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *flagV != "" {
		// go vet invokes `vettool -V=full` to key its cache.
		fmt.Printf("vread-lint version %s\n", version)
		return
	}
	if *flagFlags {
		// go vet invokes `vettool -flags` to learn which vet flags the tool
		// accepts; none of the standard ones apply.
		fmt.Println("[]")
		return
	}

	analyzers, err := selectAnalyzers(*flagRun)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet -vettool mode: one package per invocation, described by a
		// JSON config file. Whole-program analyzers need every package at
		// once, so only the per-package subset runs here; `make lint` runs
		// the full suite standalone.
		diags, err := analysis.RunVet(args[0], perPackage(analyzers))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vread-lint:", err)
			os.Exit(1)
		}
		report(diags, nil, *flagList, *flagJSON)
		if len(diags) > 0 {
			os.Exit(2)
		}
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}
	if *flagUnused && *flagRun != "" {
		fmt.Fprintln(os.Stderr, "vread-lint: -unused-allow needs the full suite; drop -run")
		os.Exit(2)
	}
	diags, timings, err := analysis.RunSuiteTimed(analysis.NewProgram(pkgs), analyzers, *flagUnused)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}
	report(diags, timings, *flagList, *flagJSON)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(runFlag string) ([]*analysis.Analyzer, error) {
	suite := all.Analyzers()
	if runFlag == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	var names []string
	for _, a := range suite {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	sort.Strings(names) // the "have:" listing is user-facing; keep it scannable
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(names, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// perPackage filters out whole-program analyzers, which cannot run under
// the one-package-at-a-time vet protocol.
func perPackage(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunProgram == nil {
			out = append(out, a)
		}
	}
	return out
}

func report(diags []analysis.Diagnostic, timings []analysis.AnalyzerTiming, listOnly, asJSON bool) {
	if asJSON {
		os.Stdout.Write(analysis.MarshalReport(diags, timings))
		return
	}
	for _, d := range diags {
		if listOnly {
			fmt.Printf("%s:%d\n", d.Pos.Filename, d.Pos.Line)
			continue
		}
		fmt.Fprintln(os.Stderr, d.String())
	}
}
