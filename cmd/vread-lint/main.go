// vread-lint is the multichecker for the simulator's invariant analyzers:
//
//	determinism    no wall clock, no unseeded math/rand, no map-order output
//	simdiscipline  no raw goroutines/channels/sync/timers outside internal/sim
//	lockpair       every ring spinlock acquire released on all paths
//	tracecharge    every span ended on all paths; no dropped trace contexts
//
// Standalone:
//
//	vread-lint ./...                 # lint packages, exit 1 on findings
//	vread-lint -list ./...           # findings as file:line for editor jumps
//	vread-lint -run lockpair ./...   # subset of analyzers
//
// As a vet tool (the go vet driver handles caching and test packages):
//
//	go vet -vettool=$(pwd)/bin/vread-lint ./...
//
// Suppress a deliberate violation with a trailing or preceding comment:
//
//	//lint:allow determinism(reason the wall clock is safe here)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vread/internal/analysis"
	"vread/internal/analysis/all"
)

// version participates in go vet's content-based caching (-V=full).
const version = "v1"

func main() {
	flagV := flag.String("V", "", "print version (go vet protocol)")
	flagFlags := flag.Bool("flags", false, "describe flags as JSON (go vet protocol)")
	flagList := flag.Bool("list", false, "print findings as file:line only")
	flagRun := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	flagJSON := flag.Bool("json", false, "ignored; accepted for vet driver compatibility")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vread-lint [-list] [-run names] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	_ = *flagJSON

	if *flagV != "" {
		// go vet invokes `vettool -V=full` to key its cache.
		fmt.Printf("vread-lint version %s\n", version)
		return
	}
	if *flagFlags {
		// go vet invokes `vettool -flags` to learn which vet flags the tool
		// accepts; none of the standard ones apply.
		fmt.Println("[]")
		return
	}

	analyzers, err := selectAnalyzers(*flagRun)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet -vettool mode: one package per invocation, described by a
		// JSON config file.
		diags, err := analysis.RunVet(args[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vread-lint:", err)
			os.Exit(1)
		}
		report(diags, *flagList)
		if len(diags) > 0 {
			os.Exit(2)
		}
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vread-lint:", err)
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vread-lint:", err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
	}
	report(diags, *flagList)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(runFlag string) ([]*analysis.Analyzer, error) {
	suite := all.Analyzers()
	if runFlag == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: determinism, simdiscipline, lockpair, tracecharge)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func report(diags []analysis.Diagnostic, listOnly bool) {
	for _, d := range diags {
		if listOnly {
			fmt.Printf("%s:%d\n", d.Pos.Filename, d.Pos.Line)
			continue
		}
		fmt.Fprintln(os.Stderr, d.String())
	}
}
