// Command vread-bench regenerates any table or figure of the paper's
// evaluation and prints the rows next to the paper's reported values.
//
// Usage:
//
//	vread-bench -exp fig2|fig3|fig6|fig7|fig8|fig9|fig11|fig12|fig13|table2|table3|ablations|faults|migrate|all
//	            [-scale 0.05] [-seed 1] [-transport rdma|tcp] [-parallel 0]
//	            [-trace out.json] [-trace-every 1]
//	vread-bench -bench BENCH.json [-bench-scale 0.02] [-bench-short]
//
// Scale 1.0 runs paper-sized datasets (5 GB TestDFSIO, 5 M HBase rows,
// 30 M Hive rows); the default 0.05 keeps everything under a few minutes.
//
// With -trace, every sampled request's trace is written as Chrome
// trace_event JSON (open in chrome://tracing or Perfetto) and the per-stage
// latency percentiles as CSV next to it (<out>.stages.csv). -trace-every N
// samples every Nth request; trace output is deterministic — same seed and
// flags give byte-identical files, including under -parallel (independent
// grid cells fan out across CPUs but results are collected by cell index).
//
// -bench switches to the performance suite: event-engine microbenchmarks
// plus the Figures 11/12 grid serial vs parallel, written as one JSON
// report (`make bench` numbers them BENCH_<n>.json).
package main

import (
	"flag"
	"fmt"
	"os"

	"vread"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vread-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment id (fig2..fig13, table2, table3, ablations, all)")
	scale := flag.Float64("scale", 0.05, "dataset scale relative to paper sizes")
	format := flag.String("format", "table", "output format (table|csv)")
	seed := flag.Int64("seed", 1, "simulation seed")
	transport := flag.String("transport", "rdma", "remote daemon transport (rdma|tcp)")
	traceFile := flag.String("trace", "", "write request traces as Chrome trace_event JSON to this file (plus <file>.stages.csv)")
	traceEvery := flag.Int("trace-every", 1, "with -trace, sample every Nth request")
	parallel := flag.Int("parallel", 0, "experiment cells to run concurrently (0 = one per CPU, 1 = serial); results are byte-identical either way")
	benchOut := flag.String("bench", "", "run the performance benchmark suite and write its JSON report to this file (ignores -exp)")
	benchScale := flag.Float64("bench-scale", 0.02, "dataset scale for the -bench experiment measurements")
	benchShort := flag.Bool("bench-short", false, "with -bench, run the abbreviated CI smoke suite")
	flag.Parse()

	if *benchOut != "" {
		return runBenchSuite(*benchOut, *benchScale, *benchShort)
	}

	opt := vread.Options{Seed: *seed, Scale: *scale, Parallel: *parallel}
	var col *vread.TraceCollector
	if *traceFile != "" {
		col = &vread.TraceCollector{}
		opt.Traces = col
		opt.TraceEvery = *traceEvery
	}
	switch *transport {
	case "rdma":
		opt.Transport = vread.TransportRDMA
	case "tcp":
		opt.Transport = vread.TransportTCP
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}

	csvOut := *format == "csv"
	runners := map[string]func(vread.Options) (string, error){
		"fig2": func(o vread.Options) (string, error) {
			rows, err := vread.RunFig2(o)
			if csvOut {
				return vread.CSVFig2(rows), err
			}
			return vread.FormatFig2(rows), err
		},
		"fig3": func(o vread.Options) (string, error) {
			rows, err := vread.RunFig3(o)
			if csvOut {
				return vread.CSVFig3(rows), err
			}
			return vread.FormatFig3(rows), err
		},
		"fig6": breakdownRunner("Figure 6 (co-located)", vread.RunFig6, csvOut),
		"fig7": breakdownRunner("Figure 7 (remote, RDMA)", vread.RunFig7, csvOut),
		"fig8": breakdownRunner("Figure 8 (remote, TCP)", vread.RunFig8, csvOut),
		"fig9": func(o vread.Options) (string, error) {
			rows, err := vread.RunFig9(o)
			if csvOut {
				return vread.CSVFig9(rows), err
			}
			return vread.FormatFig9(rows), err
		},
		"fig11": dfsioRunner(csvOut),
		"fig12": dfsioRunner(csvOut),
		"fig13": func(o vread.Options) (string, error) {
			rows, err := vread.RunFig13(o)
			if csvOut {
				return vread.CSVFig13(rows), err
			}
			return vread.FormatFig13(rows), err
		},
		"table2": func(o vread.Options) (string, error) {
			rows, err := vread.RunTable2(o)
			if csvOut {
				return vread.CSVTable2(rows), err
			}
			return vread.FormatTable2(rows), err
		},
		"table3": func(o vread.Options) (string, error) {
			rows, err := vread.RunTable3(o)
			if csvOut {
				return vread.CSVTable3(rows), err
			}
			return vread.FormatTable3(rows), err
		},
		"ablations": ablationRunner(csvOut),
		"migrate": func(o vread.Options) (string, error) {
			rows, err := vread.RunMigrationSweep(o, vread.MigrationConfig{Seed: o.Seed})
			if csvOut {
				return vread.CSVMigration(rows), err
			}
			return vread.FormatMigration(rows), err
		},
		"faults": func(o vread.Options) (string, error) {
			rows, err := vread.RunFaultSweep(o)
			if csvOut {
				return vread.CSVAblations(rows), err
			}
			return vread.FormatAblations(rows), err
		},
	}

	order := []string{"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig11", "fig13", "table2", "table3", "ablations", "faults", "migrate"}
	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	} else if *exp == "fig12" {
		ids = []string{"fig11"} // figures 11 and 12 come from the same runs
	}
	for _, id := range ids {
		fn, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try: %v, all)", id, order)
		}
		out, err := fn(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("=== %s (scale %.3g, seed %d) ===\n%s\n", id, opt.Scale, opt.Seed, out)
	}
	if col != nil {
		if err := writeTraces(*traceFile, col); err != nil {
			return err
		}
		fmt.Printf("wrote %d traces to %s (+ %s.stages.csv)\n", len(col.Traces), *traceFile, *traceFile)
	}
	return nil
}

// writeTraces dumps the collected traces as Chrome trace_event JSON plus the
// per-stage latency percentile CSV.
func writeTraces(path string, col *vread.TraceCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := vread.WriteChromeTrace(f, col.Traces); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sf, err := os.Create(path + ".stages.csv")
	if err != nil {
		return err
	}
	if err := vread.WriteTraceStagesCSV(sf, vread.TraceStages(col.Traces)); err != nil {
		sf.Close()
		return err
	}
	return sf.Close()
}

func breakdownRunner(title string, run func(vread.Options) ([]vread.BreakdownRow, error), csvOut bool) func(vread.Options) (string, error) {
	return func(o vread.Options) (string, error) {
		rows, err := run(o)
		if csvOut {
			return vread.CSVBreakdowns(rows), err
		}
		return vread.FormatBreakdowns(title, rows), err
	}
}

func dfsioRunner(csvOut bool) func(vread.Options) (string, error) {
	return func(o vread.Options) (string, error) {
		rows, err := vread.RunFig11and12(o)
		if csvOut {
			return vread.CSVDFSIO(rows), err
		}
		return vread.FormatDFSIO(rows), err
	}
}

func ablationRunner(csvOut bool) func(vread.Options) (string, error) {
	return func(o vread.Options) (string, error) {
		var all []vread.AblationRow
		for _, fn := range []func(vread.Options) ([]vread.AblationRow, error){
			vread.RunAblationRingSlots,
			vread.RunAblationDirectRead,
			vread.RunAblationTransport,
			vread.RunAblationShortCircuit,
			vread.RunAblationSRIOV,
		} {
			rows, err := fn(o)
			if err != nil {
				return "", err
			}
			all = append(all, rows...)
		}
		if csvOut {
			return vread.CSVAblations(all), nil
		}
		return vread.FormatAblations(all), nil
	}
}
