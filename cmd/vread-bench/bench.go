// Benchmark mode: vread-bench -bench <out.json> measures the simulator's own
// performance — event-engine microbenchmarks and experiment-grid wall clock —
// and writes one JSON snapshot. The Makefile's `make bench` target names the
// snapshots BENCH_<n>.json so the perf trajectory accumulates across PRs.
//
// This file is the one place in the tree allowed to consult the wall clock:
// it measures the simulator from the outside, it never feeds results back in.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vread"
)

// engineBench is one event-engine microbenchmark result.
type engineBench struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// experimentBench is one experiment-level wall-clock measurement. Rows that
// exercise multi-core execution carry the parallelism they ran with
// (GoMaxProcs, Shards) so the gate can compare like with like across
// machines.
type experimentBench struct {
	Name            string  `json:"name"`
	WallMs          float64 `json:"wall_ms"`
	Rows            int     `json:"rows"`
	Events          int64   `json:"events,omitempty"`
	EventsPerSec    float64 `json:"events_per_sec,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	GoMaxProcs      int     `json:"go_maxprocs,omitempty"`
	Shards          int     `json:"shards,omitempty"`
}

// benchReport is the BENCH_<n>.json schema.
type benchReport struct {
	GoMaxProcs  int               `json:"go_maxprocs"`
	Scale       float64           `json:"scale"`
	Short       bool              `json:"short,omitempty"`
	Engine      []engineBench     `json:"engine"`
	Experiments []experimentBench `json:"experiments"`
}

// runBenchSuite runs every benchmark and writes the report to path.
func runBenchSuite(path string, scale float64, short bool) error {
	if short {
		scale = scale / 4
	}
	report := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Short:      short,
	}

	report.Engine = append(report.Engine,
		benchScheduleFire(),
		benchScheduleCancel(),
		benchTimerWheel(),
		benchProcSleep(),
	)

	grid, err := benchFig11Grid(scale)
	if err != nil {
		return fmt.Errorf("bench fig11 grid: %w", err)
	}
	report.Experiments = append(report.Experiments, grid...)

	sharded, err := benchShardGrid(scale)
	if err != nil {
		return fmt.Errorf("bench shard grid: %w", err)
	}
	report.Experiments = append(report.Experiments, sharded...)

	faults, err := benchFaultOverhead(scale)
	if err != nil {
		return fmt.Errorf("bench fault overhead: %w", err)
	}
	report.Experiments = append(report.Experiments, faults...)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchScheduleFire measures the engine hot path: one Schedule plus one fire,
// amortized over batches so the queue stays realistically sized.
func benchScheduleFire() engineBench {
	const batch = 1024
	fn := func() {}
	res := testing.Benchmark(func(b *testing.B) {
		env := vread.NewEnv(1)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += batch {
			k := batch
			if rem := b.N - n; rem < k {
				k = rem
			}
			for j := 0; j < k; j++ {
				env.Schedule(time.Duration(j)*time.Nanosecond, fn)
			}
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toEngineBench("engine/schedule-fire", res)
}

// benchScheduleCancel measures the cancel-heavy timeout pattern: every
// second timer is cancelled before it can fire.
func benchScheduleCancel() engineBench {
	const batch = 1024
	fn := func() {}
	res := testing.Benchmark(func(b *testing.B) {
		env := vread.NewEnv(1)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += batch {
			k := batch
			if rem := b.N - n; rem < k {
				k = rem
			}
			for j := 0; j < k; j++ {
				tm := env.Schedule(time.Duration(j)*time.Nanosecond, fn)
				if j%2 == 1 {
					tm.Cancel()
				}
			}
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toEngineBench("engine/schedule-cancel", res)
}

// benchTimerWheel measures schedule+fire for timers that land in the
// hierarchical wheel's bucket lanes (microseconds to hundreds of
// microseconds out) rather than the sub-tick heap the schedule-fire bench
// exercises — the NIC/softirq/disk-completion timer profile.
func benchTimerWheel() engineBench {
	const batch = 1024
	fn := func() {}
	res := testing.Benchmark(func(b *testing.B) {
		env := vread.NewEnv(1)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += batch {
			k := batch
			if rem := b.N - n; rem < k {
				k = rem
			}
			for j := 0; j < k; j++ {
				env.Schedule(time.Duration(j%200+1)*time.Microsecond, fn)
			}
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toEngineBench("engine/timer-wheel", res)
}

// benchProcSleep measures the steady-state coroutine handoff: one process
// sleeping in a tight loop (two events and two goroutine switches per
// iteration). The environment and process are created once and warmed
// before the timer starts, so the number reported is the recurring cost —
// which must be allocation-free.
func benchProcSleep() engineBench {
	res := testing.Benchmark(func(b *testing.B) {
		env := vread.NewEnv(1)
		defer env.Close()
		env.Go("sleeper", func(p *vread.Proc) {
			for {
				p.Sleep(time.Microsecond)
			}
		})
		if err := env.RunFor(256 * time.Microsecond); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if err := env.RunFor(time.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toEngineBench("engine/proc-sleep", res)
}

func toEngineBench(name string, res testing.BenchmarkResult) engineBench {
	ns := float64(res.NsPerOp())
	eps := 0.0
	if ns > 0 {
		eps = 1e9 / ns
	}
	return engineBench{
		Name:         name,
		NsPerOp:      ns,
		AllocsPerOp:  float64(res.AllocsPerOp()),
		EventsPerSec: eps,
	}
}

// benchFig11Grid measures the full Figures 11/12 grid (36 independent cells)
// twice — serial (Parallel=1) and fanned out over one worker per CPU
// (Parallel=0) — and reports the wall-clock speedup next to the
// simulated-events/sec each mode sustains.
func benchFig11Grid(scale float64) ([]experimentBench, error) {
	serial, err := benchGridOnce("fig11-grid/serial", scale, 1)
	if err != nil {
		return nil, err
	}
	parallel, err := benchGridOnce("fig11-grid/parallel", scale, 0)
	if err != nil {
		return nil, err
	}
	if parallel.WallMs > 0 {
		parallel.SpeedupVsSerial = serial.WallMs / parallel.WallMs
	}
	return []experimentBench{serial, parallel}, nil
}

// benchFaultOverhead measures what an armed-but-silent fault plan costs: the
// same DFSIO point with no plan versus a plan arming every faultpoint at
// probability zero, so each injection site is evaluated on the hot path but
// never fires. The armed row's speedup_vs_serial field is its slowdown
// relative to the unarmed run (1.0 = free).
func benchFaultOverhead(scale float64) ([]experimentBench, error) {
	run := func(name string, spec vread.FaultSpec) (experimentBench, error) {
		stats := &vread.RunStats{}
		opt := vread.Options{Seed: 1, Scale: scale, VRead: true, Faults: spec, Stats: stats}
		start := time.Now() //lint:allow determinism(bench harness measures the simulator from outside)
		rows, err := vread.RunDFSIOPoint(opt, vread.Colocated, 2, 0, true)
		if err != nil {
			return experimentBench{}, err
		}
		wall := time.Since(start) //lint:allow determinism(bench harness measures the simulator from outside)
		eb := experimentBench{
			Name:   name,
			WallMs: float64(wall) / float64(time.Millisecond),
			Rows:   len(rows),
			Events: stats.Events(),
		}
		if wall > 0 {
			eb.EventsPerSec = float64(stats.Events()) / wall.Seconds()
		}
		return eb, nil
	}
	off, err := run("fault-overhead/off", nil)
	if err != nil {
		return nil, err
	}
	var silent vread.FaultSpec
	for _, pt := range vread.FaultPoints() {
		silent = append(silent, vread.FaultRule{Point: pt, Prob: 0})
	}
	armed, err := run("fault-overhead/armed-never-fire", silent)
	if err != nil {
		return nil, err
	}
	if armed.WallMs > 0 {
		armed.SpeedupVsSerial = off.WallMs / armed.WallMs
	}
	return []experimentBench{off, armed}, nil
}

// benchShardGrid measures the sharded engine itself: the same read storm run
// serially (one shard) and with one shard per CPU, on identical virtual
// scenarios — the cells' fingerprints are checked equal before the wall
// clocks are compared. On a single-CPU machine the parallel row still runs
// (two shards over one core) and its speedup is honestly ~1 or below; the
// gate only compares speedups between reports with the same go_maxprocs.
func benchShardGrid(scale float64) ([]experimentBench, error) {
	reads := int(1600 * scale)
	if reads < 4 {
		reads = 4
	}
	k := runtime.NumCPU()
	if k < 2 {
		k = 2
	}
	cells, err := vread.RunShardGrid(vread.ShardGridConfig{
		Seed:           1,
		Domains:        1,
		RacksPerDomain: 4,
		HostsPerRack:   4,
		ClientHosts:    4,
		StreamsPerHost: 4,
		ReadsPerStream: reads,
		Deadline:       time.Duration(reads) * 8 * time.Millisecond,
		Shards:         []int{1, k},
	})
	if err != nil {
		return nil, err
	}
	if cells[1].Fingerprint != cells[0].Fingerprint {
		return nil, fmt.Errorf("shard grid diverged: K=%d fingerprint %#x, serial %#x",
			cells[1].Shards, cells[1].Fingerprint, cells[0].Fingerprint)
	}
	out := make([]experimentBench, 2)
	for i, cell := range cells {
		name := "shard-grid/serial"
		if i == 1 {
			name = "shard-grid/parallel"
		}
		eb := experimentBench{
			Name:       name,
			WallMs:     float64(cell.Wall) / float64(time.Millisecond),
			Rows:       len(cell.Rows),
			Events:     int64(cell.Events),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Shards:     cell.Shards,
		}
		if cell.Wall > 0 {
			eb.EventsPerSec = float64(cell.Events) / cell.Wall.Seconds()
		}
		out[i] = eb
	}
	if out[1].WallMs > 0 {
		out[1].SpeedupVsSerial = out[0].WallMs / out[1].WallMs
	}
	return out, nil
}

func benchGridOnce(name string, scale float64, parallelism int) (experimentBench, error) {
	stats := &vread.RunStats{}
	opt := vread.Options{Seed: 1, Scale: scale, Parallel: parallelism, Stats: stats}
	start := time.Now() //lint:allow determinism(bench harness measures the simulator from outside)
	rows, err := vread.RunFig11and12(opt)
	if err != nil {
		return experimentBench{}, err
	}
	wall := time.Since(start) //lint:allow determinism(bench harness measures the simulator from outside)
	eb := experimentBench{
		Name:   name,
		WallMs: float64(wall) / float64(time.Millisecond),
		Rows:   len(rows),
		Events: stats.Events(),
	}
	if wall > 0 {
		eb.EventsPerSec = float64(stats.Events()) / wall.Seconds()
	}
	return eb, nil
}
