// Command hdfs-cli runs a script of HDFS operations against a freshly
// booted simulated cluster — a functional demonstration that the whole
// stack (guest kernels, virtio, HDFS, vRead) really stores and returns
// bytes.
//
// Usage:
//
//	hdfs-cli [-vread] [command...]
//
// Commands (semicolon-separated):
//
//	put <path> <sizeKB>    write a file of pattern content
//	get <path>             read a file back and verify every byte
//	head <path> <n>        print the first n bytes (hex)
//	ls                     list files known to the namenode
//	rm <path>              delete a file
//	stat <path>            print size and block locations
//	placement <path>       print shard, ring position and replica fault
//	                       domains per block (needs -shards > 1)
//
// With -shards N (> 1) the namespace is federated behind a router and
// -replication R writes R replicas per block, placed by the consistent-hash
// ring across the testbed's fault domains.
//
// Example:
//
//	hdfs-cli -vread put /a 2048 ; get /a ; stat /a ; rm /a ; ls
//	hdfs-cli -shards 4 -replication 2 put /a 2048 ; placement /a
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hdfs-cli:", err)
		os.Exit(1)
	}
}

func run() error {
	useVRead := flag.Bool("vread", false, "enable vRead on the client")
	shards := flag.Int("shards", 1, "federate the namespace across this many shards (> 1)")
	replication := flag.Int("replication", 1, "replicas per block (testbed supports up to 2)")
	flag.Parse()
	script := strings.Join(flag.Args(), " ")
	if script == "" {
		script = "put /demo/hello 1024 ; stat /demo/hello ; get /demo/hello ; ls"
	}

	opt := vread.Options{Seed: 1, VRead: *useVRead, Shards: *shards, Replication: *replication}
	tb := vread.NewTestbed(opt)
	defer tb.Close()

	written := map[string]data.Pattern{}
	var out strings.Builder
	err := tb.Run("hdfs-cli", 24*time.Hour, func(p *sim.Proc) error {
		for _, cmd := range strings.Split(script, ";") {
			fields := strings.Fields(cmd)
			if len(fields) == 0 {
				continue
			}
			if err := exec(p, tb, written, &out, fields); err != nil {
				return fmt.Errorf("%q: %w", strings.TrimSpace(cmd), err)
			}
		}
		return nil
	})
	fmt.Print(out.String())
	if err != nil {
		return err
	}
	fmt.Printf("(virtual time elapsed: %v)\n", tb.C.Env.Now().Round(time.Microsecond))
	return nil
}

func exec(p *sim.Proc, tb *vread.Testbed, written map[string]data.Pattern, out *strings.Builder, fields []string) error {
	switch fields[0] {
	case "put":
		if len(fields) != 3 {
			return fmt.Errorf("usage: put <path> <sizeKB>")
		}
		kb, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return err
		}
		content := data.Pattern{Seed: uint64(len(written)) + 7, Size: kb << 10}
		if err := tb.Client.WriteFile(p, fields[1], content); err != nil {
			return err
		}
		written[fields[1]] = content
		fmt.Fprintf(out, "put %s (%d KB)\n", fields[1], kb)
	case "get":
		if len(fields) != 2 {
			return fmt.Errorf("usage: get <path>")
		}
		r, err := tb.Client.Open(p, fields[1])
		if err != nil {
			return err
		}
		defer r.Close(p)
		start := tb.C.Env.Now()
		s, err := r.ReadFull(p, r.Size())
		if err != nil {
			return err
		}
		verdict := "integrity not tracked"
		if want, ok := written[fields[1]]; ok {
			if data.Equal(s, data.NewSlice(want)) {
				verdict = "every byte verified"
			} else {
				verdict = "CORRUPTED"
			}
		}
		elapsed := tb.C.Env.Now() - start
		fmt.Fprintf(out, "get %s: %d bytes in %v (%.1f MB/s virtual), %s\n",
			fields[1], s.Len(), elapsed.Round(time.Microsecond), metrics.Throughput(s.Len(), elapsed), verdict)
	case "head":
		if len(fields) != 3 {
			return fmt.Errorf("usage: head <path> <n>")
		}
		n, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return err
		}
		r, err := tb.Client.Open(p, fields[1])
		if err != nil {
			return err
		}
		defer r.Close(p)
		s, err := r.ReadAt(p, 0, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "head %s: % x\n", fields[1], s.Bytes())
	case "ls":
		fmt.Fprintf(out, "datanodes: %v\n", tb.NS.DataNodes())
		paths := make([]string, 0, len(written))
		for path := range written {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			if size, ok := tb.NS.FileSize(path); ok {
				fmt.Fprintf(out, "  %-24s %d bytes\n", path, size)
			}
		}
	case "rm":
		if len(fields) != 2 {
			return fmt.Errorf("usage: rm <path>")
		}
		if err := tb.Client.DeleteFile(p, fields[1]); err != nil {
			return err
		}
		delete(written, fields[1])
		fmt.Fprintf(out, "rm %s\n", fields[1])
	case "stat":
		if len(fields) != 2 {
			return fmt.Errorf("usage: stat <path>")
		}
		blocks, err := tb.NS.GetBlockLocations(p, tb.Client.Kernel(), fields[1])
		if err != nil {
			return err
		}
		size, _ := tb.NS.FileSize(fields[1])
		fmt.Fprintf(out, "stat %s: %d bytes, %d block(s)\n", fields[1], size, len(blocks))
		for _, b := range blocks {
			fmt.Fprintf(out, "  %-10s %10d bytes on %v\n", b.BlockName(), b.Size, b.Locations)
		}
	case "placement":
		if len(fields) != 2 {
			return fmt.Errorf("usage: placement <path>")
		}
		if tb.Router == nil {
			return fmt.Errorf("placement needs a federated namespace (run with -shards > 1)")
		}
		places, err := tb.Router.PlacementOf(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "placement %s: shard %d of %d\n", fields[1], tb.Router.ShardOf(fields[1]), tb.Router.NumShards())
		for _, pl := range places {
			fmt.Fprintf(out, "  %-10s shard=%d ring=%016x\n", pl.Block.BlockName(), pl.Shard, pl.RingPos)
			for _, rep := range pl.Replicas {
				fmt.Fprintf(out, "    %s\n", rep)
			}
		}
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}
