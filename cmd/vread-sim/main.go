// Command vread-sim runs one custom scenario on the simulated testbed and
// prints throughput, delay, and per-entity CPU breakdowns — a workbench for
// exploring the model outside the paper's fixed experiment grid.
//
// Usage:
//
//	vread-sim [-vread] [-scenario co-located|remote|hybrid] [-freq-ghz 2.0]
//	          [-hogs] [-size-mb 256] [-buffer-kb 1024] [-transport rdma|tcp]
//	          [-bypass] [-seed 1]
//	          [-faults "disk.read.slow:p=0.2,delay=2ms;daemon.crash:after=10,max=1"]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vread-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	useVRead := flag.Bool("vread", false, "enable vRead")
	scenario := flag.String("scenario", "co-located", "block placement (co-located|remote|hybrid)")
	freqGHz := flag.Float64("freq-ghz", 2.0, "host CPU frequency in GHz")
	hogs := flag.Bool("hogs", false, "add the 85% lookbusy background VMs (4-VM setups)")
	sizeMB := flag.Int64("size-mb", 256, "file size to write and read")
	bufferKB := flag.Int64("buffer-kb", 1024, "application read buffer")
	transport := flag.String("transport", "rdma", "remote daemon transport (rdma|tcp)")
	bypass := flag.Bool("bypass", false, "daemon bypasses the host FS (§6 ablation)")
	seed := flag.Int64("seed", 1, "simulation seed")
	faultSpec := flag.String("faults", "", "deterministic fault plan (point[:p=..,after=..,max=..,delay=..];...)")
	configPath := flag.String("config", "", "JSON scenario file (overrides the other flags)")
	sloPath := flag.String("slo", "", "write scale-out SLO rows as JSON to this file (scale_out scenarios)")
	blackoutPath := flag.String("blackout", "", "write migration blackout rows as JSON to this file (migrate scenarios)")
	flag.Parse()

	var opt vread.Options
	var place vread.Scenario
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		var sc vread.ScaleConfig
		var scaleOut bool
		opt, sc, scaleOut, err = vread.ParseScaleOptions(raw)
		if err != nil {
			return fmt.Errorf("config %s: %w", *configPath, err)
		}
		if scaleOut {
			return runScale(opt, sc, *sloPath)
		}
		var mc vread.MigrationConfig
		var migrate bool
		opt, mc, migrate, err = vread.ParseMigrateOptions(raw)
		if err != nil {
			return fmt.Errorf("config %s: %w", *configPath, err)
		}
		if migrate {
			return runMigrate(opt, mc, *blackoutPath)
		}
		_, place, err = vread.ParseOptions(raw)
		if err != nil {
			return fmt.Errorf("config %s: %w", *configPath, err)
		}
		*useVRead = opt.VRead
	} else {
		opt = vread.Options{
			Seed:             *seed,
			FreqHz:           int64(*freqGHz * 1e9),
			ExtraVMs:         *hogs,
			VRead:            *useVRead,
			DirectDiskBypass: *bypass,
		}
		if *transport == "tcp" {
			opt.Transport = vread.TransportTCP
		}
		switch *scenario {
		case "co-located":
			place = vread.Colocated
		case "remote":
			place = vread.Remote
		case "hybrid":
			place = vread.Hybrid
		default:
			return fmt.Errorf("unknown scenario %q", *scenario)
		}
		if *faultSpec != "" {
			spec, err := vread.ParseFaultSpec(*faultSpec)
			if err != nil {
				return err
			}
			opt.Faults = spec
		}
	}

	tb := vread.NewTestbed(opt)
	defer tb.Close()
	tb.Place(place)

	size := *sizeMB << 20
	content := data.Pattern{Seed: uint64(*seed), Size: size}
	var writeTime, coldTime, warmTime time.Duration
	err := tb.Run("vread-sim", 24*time.Hour, func(p *sim.Proc) error {
		start := tb.C.Env.Now()
		if err := tb.Client.WriteFile(p, "/sim/file", content); err != nil {
			return err
		}
		writeTime = tb.C.Env.Now() - start

		tb.DropAllCaches()
		tb.C.Reg.MarkWindow(tb.C.Env.Now())
		start = tb.C.Env.Now()
		if err := readAll(p, tb, *bufferKB<<10); err != nil {
			return err
		}
		coldTime = tb.C.Env.Now() - start

		start = tb.C.Env.Now()
		if err := readAll(p, tb, *bufferKB<<10); err != nil {
			return err
		}
		warmTime = tb.C.Env.Now() - start
		return nil
	})
	if err != nil {
		return err
	}

	sys := "vanilla"
	if opt.VRead {
		sys = "vRead"
	}
	fmt.Printf("scenario=%s system=%s freq=%.1fGHz hogs=%v size=%dMB buffer=%dKB\n\n",
		place, sys, float64(tb.Opt.FreqHz)/1e9, opt.ExtraVMs, *sizeMB, *bufferKB)
	fmt.Printf("write:      %10.1f MB/s  (%v)\n", metrics.Throughput(size, writeTime), writeTime.Round(time.Millisecond))
	fmt.Printf("cold read:  %10.1f MB/s  (%v)\n", metrics.Throughput(size, coldTime), coldTime.Round(time.Millisecond))
	fmt.Printf("warm read:  %10.1f MB/s  (%v)\n\n", metrics.Throughput(size, warmTime), warmTime.Round(time.Millisecond))

	now := tb.C.Env.Now()
	fmt.Println("CPU utilization during reads (fraction of one core):")
	for _, entity := range tb.C.Reg.Entities() {
		u := tb.C.Reg.EntityUtilization(entity, now, opt.FreqHz)
		if u < 0.001 {
			continue
		}
		fmt.Printf("%-22s %6.1f%%\n", entity, u*100)
		fmt.Print(metrics.FormatBreakdown(tb.C.Reg.Breakdown(entity, now, opt.FreqHz)))
	}
	if tb.Mgr != nil {
		st := tb.Mgr.Daemon("client").Stats()
		fmt.Printf("\nvRead daemon: opens=%d misses=%d localMB=%d remoteMB=%d\n",
			st.Opens, st.OpenMisses, st.BytesLocal>>20, st.BytesRemote>>20)
	}
	if tb.Faults != nil {
		fmt.Println("\nfault injection:")
		for _, pc := range tb.Faults.Counts() {
			fmt.Printf("%-20s evals=%-6d fired=%d\n", pc.Point, pc.Evals, pc.Fires)
		}
		if tb.Mgr != nil {
			st := tb.Mgr.Daemon("client").Stats()
			fmt.Printf("degradation: lib-retries=%d remote-retries=%d crashes=%d doorbells-lost=%d downgrades=%d\n",
				tb.Mgr.LibStats("client").Retries, st.RemoteRetries, st.Crashes,
				st.DoorbellsLost, tb.Mgr.Downgrades())
		}
	}
	return nil
}

// runScale drives the datacenter-scale scenario: a federated namespace over
// a multi-domain topology under an open-loop storm, emitting p50/p95/p99 SLO
// rows (and, with -slo, a JSON report for CI artifacts).
func runScale(opt vread.Options, sc vread.ScaleConfig, sloPath string) error {
	rows, err := vread.RunScale(opt, sc)
	if err != nil {
		return err
	}
	fmt.Print(vread.RenderSLORows(rows))
	if sloPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Rows []vread.SLORow `json:"rows"`
	}{rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(sloPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", sloPath, len(rows))
	return nil
}

// runMigrate drives the live-mount-migration blackout sweep: one cell per
// in-flight depth, every read correct or the sweep errors, blackout rows
// printed (and, with -blackout, written as JSON for CI artifacts).
func runMigrate(opt vread.Options, mc vread.MigrationConfig, blackoutPath string) error {
	rows, err := vread.RunMigrationSweep(opt, mc)
	if err != nil {
		return err
	}
	fmt.Print(vread.FormatMigration(rows))
	if blackoutPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Rows []vread.MigrationRow `json:"rows"`
	}{rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(blackoutPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", blackoutPath, len(rows))
	return nil
}

func readAll(p *sim.Proc, tb *vread.Testbed, buf int64) error {
	r, err := tb.Client.Open(p, "/sim/file")
	if err != nil {
		return err
	}
	defer r.Close(p)
	for {
		if _, err := r.Read(p, buf); errors.Is(err, io.EOF) {
			return nil
		} else if err != nil {
			return err
		}
	}
}
