# Tier-1 verification: format, vet, build, the invariant linter, full test
# suite, and the race detector on the non-simulation packages (each Env is
# single-threaded by construction; data, metrics, trace, the experiment
# fan-out in par/experiments, and the sharded coordinator in sim/shard —
# which runs whole Envs on concurrent workers — are the pieces shared with
# real concurrent callers). netsim rides along because the sharded fabric
# routes frames between concurrently-advancing Envs.

GO ?= go
RACE_PKGS := ./internal/data ./internal/metrics ./internal/trace ./internal/par ./internal/sim/shard ./internal/netsim ./internal/experiments ./internal/workload ./internal/cluster ./internal/hdfs ./internal/faults ./internal/faults/chaostest

.PHONY: tier1 fmt vet build lint lint-self lint-audit lint-fix-list lint-report test race bench bench-smoke bench-gate chaos-smoke scale-smoke migrate-smoke

tier1: fmt vet build lint test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# lint runs the simulator's eleven invariant analyzers — per-package
# (determinism, simdiscipline, lockpair, tracecharge) and interprocedural
# (hotalloc, lockorder, faultpoint, errdiscipline, guesttaint, unitflow,
# lpowner) — over the whole tree.
# Also usable as a vet tool (per-package analyzers only, vet shows the tool
# one package at a time):
#   go vet -vettool=$(PWD)/bin/vread-lint ./...
lint:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint ./...

# lint-self turns the linter on its own implementation: the analysis
# framework and every analyzer must satisfy the invariants they enforce.
lint-self:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint ./internal/analysis/... ./cmd/vread-lint

# lint-audit is lint plus stale-suppression reporting: a //lint:allow that
# suppresses nothing is lint debt and fails CI until it is deleted.
lint-audit:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint -unused-allow ./...

# lint-fix-list prints findings as file:line for editor quickfix lists.
lint-fix-list:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint -list ./...

# lint-report writes the findings as stable, diffable JSON (byte-identical
# across runs on the same tree) for the CI artifact; the exit status is the
# lint verdict, the report is written either way.
lint-report:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint -json ./... > lint-report.json; \
		status=$$?; cat lint-report.json; exit $$status

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# bench runs the performance suite (event-engine microbenchmarks, the
# Figures 11/12 grid serial and parallel, and the sharded-engine grid) and
# writes the next numbered BENCH_<n>.json so the perf trajectory accumulates
# across PRs. The snapshot is also copied to bench-snapshot.json — a stable
# name for the CI artifact upload.
bench:
	$(GO) build -o bin/vread-bench ./cmd/vread-bench
	@n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
		./bin/vread-bench -bench BENCH_$$n.json; \
		cp BENCH_$$n.json bench-snapshot.json; \
		echo "wrote BENCH_$$n.json"; cat BENCH_$$n.json

# chaos-smoke runs the deterministic fault-injection suite: the seed × plan
# smoke matrix, the hostile-guest profile (forged descriptors, stale keys,
# doorbell storms, held slots — per-VM isolation checked at shard counts 1
# and >1 with byte-identical fingerprints), the live-migration storms, and
# the byte-identical-replay checks. On an invariant violation the failing
# (seed, plan) pairs are written to chaos-failures.json — each pair is a
# complete reproducer: re-run the same seed and spec locally and the run
# replays byte-identically.
chaos-smoke:
	CHAOS_REPORT=chaos-failures.json $(GO) test ./internal/faults/chaostest/ -count=1 -run 'TestChaos' -v

# bench-smoke is the abbreviated CI variant: same suite at a quarter of the
# scale, written to a fixed name for artifact upload.
bench-smoke:
	$(GO) build -o bin/vread-bench ./cmd/vread-bench
	./bin/vread-bench -bench bench-smoke.json -bench-short
	@cat bench-smoke.json

# bench-gate runs the abbreviated suite and fails on engine regressions
# against the newest committed BENCH_<n>.json: any allocs_per_op increase, or
# ns_per_op beyond the gate's threshold. Engine ns/op is per-operation and so
# comparable across scales; experiment wall clock is not and is not gated.
bench-gate:
	$(GO) build -o bin/vread-bench ./cmd/vread-bench
	$(GO) build -o bin/bench-gate ./cmd/bench-gate
	./bin/vread-bench -bench bench-gate.json -bench-short
	./bin/bench-gate -candidate bench-gate.json

# scale-smoke drives the datacenter-scale scenario (federated namespace over
# a 1000-host multi-domain topology, open-loop storm, mid-storm rack kill)
# and writes the p50/p95/p99 SLO rows to slo-report.json for artifact upload.
# Deterministic: same seed → byte-identical rows.
scale-smoke:
	$(GO) build -o bin/vread-sim ./cmd/vread-sim
	./bin/vread-sim -config scenarios/scale-smoke.json -slo slo-report.json

# migrate-smoke drives the live-mount-migration blackout sweep (a datanode
# mount migrated out from under concurrent reader streams, one cell per
# in-flight depth) and writes the blackout rows to blackout-report.json for
# artifact upload. Zero lost or corrupted reads is the exit status; the rows
# replay byte-identically from (seed, config).
migrate-smoke:
	$(GO) build -o bin/vread-sim ./cmd/vread-sim
	./bin/vread-sim -config scenarios/migrate-smoke.json -blackout blackout-report.json
