# Tier-1 verification: format, vet, build, the invariant linter, full test
# suite, and the race detector on the non-simulation packages (the simulator
# itself is single-threaded by construction; data, metrics and trace are the
# pieces shared with real concurrent callers).

GO ?= go
RACE_PKGS := ./internal/data ./internal/metrics ./internal/trace

.PHONY: tier1 fmt vet build lint lint-fix-list test race

tier1: fmt vet build lint test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# lint runs the simulator's invariant analyzers (determinism, simdiscipline,
# lockpair, tracecharge) over the whole tree. Also usable as a vet tool:
#   go vet -vettool=$(PWD)/bin/vread-lint ./...
lint:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint ./...

# lint-fix-list prints findings as file:line for editor quickfix lists.
lint-fix-list:
	$(GO) build -o bin/vread-lint ./cmd/vread-lint
	./bin/vread-lint -list ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
