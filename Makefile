# Tier-1 verification: format, vet, build, full test suite, and the race
# detector on the non-simulation packages (the simulator itself is
# single-threaded by construction; data, metrics and trace are the pieces
# shared with real concurrent callers).

GO ?= go
RACE_PKGS := ./internal/data ./internal/metrics ./internal/trace

.PHONY: tier1 fmt vet build test race

tier1: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
