// Package vread is a full functional reproduction, in pure Go, of
// "vRead: Efficient Data Access for Hadoop in Virtualized Clouds"
// (Xu, Saltaformaggio, Gamage, Kompella, Xu — ACM Middleware 2015).
//
// The paper's artifact is a modified KVM hypervisor; this library rebuilds
// the entire substrate as a deterministic discrete-event emulation — host
// CPUs under a CFS-like scheduler, virtio/vhost devices, guest kernels with
// page caches and sockets, disk-image file systems, a 10 Gbps RoCE LAN, and
// a functional HDFS — and implements vRead itself (libvread, the guest ring
// driver, and the per-VM hypervisor daemon) on top. Bytes really flow end to
// end; every copy, kick, interrupt and context switch charges a virtual
// clock, so the paper's figures and tables regenerate as emergent behavior.
//
// Three levels of API:
//
//   - experiment level: NewTestbed + the Run* functions regenerate every
//     figure and table of the paper's evaluation (see bench_test.go and
//     cmd/vread-bench);
//   - deployment level: NewCluster / NewNameNode / StartDataNode /
//     NewVReadManager build arbitrary virtual Hadoop clusters with or
//     without vRead (see examples/);
//   - substrate level: the simulation engine, scheduler, device and network
//     models are exposed for building different systems on the same
//     machinery.
//
// Everything is deterministic: the same seed reproduces identical results
// to the nanosecond.
package vread

import (
	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/cpusched"
	"vread/internal/experiments"
	"vread/internal/faults"
	"vread/internal/guest"
	"vread/internal/hdfs"
	"vread/internal/mapred"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/qfs"
	"vread/internal/sim"
	"vread/internal/storage"
	"vread/internal/trace"
	"vread/internal/workload"
)

// ---------------------------------------------------------------------------
// Simulation engine.

// Env is the discrete-event simulation environment.
type Env = sim.Env

// Proc is a simulated process (coroutine).
type Proc = sim.Proc

// NewEnv creates a simulation environment with a deterministic seed.
func NewEnv(seed int64) *Env { return sim.NewEnv(seed) }

// ---------------------------------------------------------------------------
// Cluster substrate.

// Cluster is a simulated testbed of hosts and VMs.
type Cluster = cluster.Cluster

// Host is one physical machine (CPU, SSD, page cache, NIC).
type Host = cluster.Host

// VM is one virtual machine (vCPU/vhost threads, virtio devices, guest
// kernel, disk-image file system).
type VM = cluster.VM

// ClusterParams configures hosts and VMs.
type ClusterParams = cluster.Params

// NewCluster creates an empty cluster.
func NewCluster(seed int64, params ClusterParams) *Cluster {
	return cluster.New(seed, params)
}

// Kernel is a VM's guest operating system (sockets + files).
type Kernel = guest.Kernel

// CPU is a host processor model; Thread is a host-schedulable thread.
type CPU = cpusched.CPU

// Thread is one host-schedulable execution context.
type Thread = cpusched.Thread

// Registry accumulates CPU-cycle, latency and throughput measurements.
type Registry = metrics.Registry

// Fabric is the LAN connecting hosts.
type Fabric = netsim.Fabric

// Disk is a physical storage device model.
type Disk = storage.Disk

// PageCache is an LRU page cache (guest- or host-level).
type PageCache = storage.PageCache

// ---------------------------------------------------------------------------
// HDFS.

// NameNode holds HDFS metadata.
type NameNode = hdfs.NameNode

// DataNode serves blocks from inside a VM.
type DataNode = hdfs.DataNode

// DFSClient is the HDFS client with the paper's read1/read2 paths.
type DFSClient = hdfs.Client

// DFSFileReader is an open DFSInputStream.
type DFSFileReader = hdfs.FileReader

// HDFSConfig holds HDFS parameters.
type HDFSConfig = hdfs.Config

// NewNameNode creates a namenode over the cluster fabric.
func NewNameNode(env *Env, cfg HDFSConfig, topo hdfs.Topology) *NameNode {
	return hdfs.NewNameNode(env, cfg, topo)
}

// StartDataNode boots a datanode inside a VM kernel.
func StartDataNode(env *Env, nn *NameNode, kernel *Kernel) *DataNode {
	return hdfs.StartDataNode(env, nn, kernel)
}

// NewDFSClient creates a DFSClient inside a VM kernel.
func NewDFSClient(env *Env, nn *NameNode, kernel *Kernel) *DFSClient {
	return hdfs.NewClient(env, nn, kernel)
}

// ---------------------------------------------------------------------------
// Federated namespace (sharded namenodes, consistent-hash placement).

// Namespace is the metadata service interface both the standalone NameNode
// and the federation NamespaceRouter implement.
type Namespace = hdfs.Namespace

// NamespaceRouter fronts a federation of namespace shards: a mount table
// (plus hash routing) maps paths to shards, block IDs are striped so they
// stay cluster-unique, and a shared consistent-hash ring places replicas
// across fault domains.
type NamespaceRouter = hdfs.Router

// RouterOptions tunes a federation (shard count, ring seed, virtual nodes,
// shard failover delay).
type RouterOptions = hdfs.RouterOptions

// HashRing is the deterministic consistent-hash ring (virtual nodes,
// fault-domain-aware replica selection).
type HashRing = hdfs.Ring

// BlockPlacement describes where one block of a path lives (shard, ring
// position, replicas with their racks and fault domains).
type BlockPlacement = hdfs.Placement

// TopologySpec describes a regular datacenter fabric: Domains fault
// domains × RacksPerDomain racks × HostsPerRack hosts.
type TopologySpec = cluster.TopologySpec

// NewNamespaceRouter creates a federation of namespace shards over one
// topology.
func NewNamespaceRouter(env *Env, cfg HDFSConfig, topo hdfs.Topology, opt RouterOptions) *NamespaceRouter {
	return hdfs.NewRouter(env, cfg, topo, opt)
}

// NewHashRing creates an empty consistent-hash ring (vnodes <= 0 selects
// the default 64 virtual nodes per member).
func NewHashRing(seed int64, vnodes int) *HashRing { return hdfs.NewRing(seed, vnodes) }

// ---------------------------------------------------------------------------
// vRead.

// VReadManager assembles vRead over a cluster: image mounts, per-host
// daemon servers, per-client rings and libvread instances.
type VReadManager = core.Manager

// VReadConfig holds vRead parameters (ring geometry, transports, costs).
type VReadConfig = core.Config

// VReadLib is libvread: the client-side library installed on a DFSClient.
type VReadLib = core.Lib

// Transport selects the remote daemon-to-daemon transport.
type Transport = core.Transport

// Remote transports.
const (
	TransportRDMA = core.TransportRDMA
	TransportTCP  = core.TransportTCP
)

// NewVReadManager creates the vRead system over a cluster and namenode.
// Call MountDatanode for each datanode VM, EnableClient for each client VM,
// and install the returned library with DFSClient.SetBlockReader.
func NewVReadManager(c *Cluster, nn *NameNode, cfg VReadConfig) *VReadManager {
	if nn == nil {
		// An untyped nil avoids handing NewManager a non-nil Namespace
		// interface wrapping a nil *NameNode.
		return core.NewManager(c, nil, cfg)
	}
	return core.NewManager(c, nn, cfg)
}

// NewFederatedVReadManager creates the vRead system over a cluster and a
// federated namespace router.
func NewFederatedVReadManager(c *Cluster, ro *NamespaceRouter, cfg VReadConfig) *VReadManager {
	if ro == nil {
		return core.NewManager(c, nil, cfg)
	}
	return core.NewManager(c, ro, cfg)
}

// DaemonEntity returns the metrics entity that vRead hypervisor work on a
// host is charged to.
func DaemonEntity(host string) string { return core.DaemonEntity(host) }

// DaemonStats holds one vRead daemon's counters, derived from its event
// stream. Retrieve them with VReadManager.DaemonStats(vmName).
type DaemonStats = core.DaemonStats

// LibStats holds one libvread instance's counters. Retrieve them with
// VReadManager.LibStats(vmName).
type LibStats = core.LibStats

// RingSnapshot is a quiesced ring's captured state: the in-flight request
// descriptors VReadManager.RingSnapshot drained, replayable after a
// VReadManager.RingRestore.
type RingSnapshot = core.RingSnapshot

// MountMigration reports one live mount migration: the hosts involved, the
// read blackout it imposed, and how many rings and descriptors rode through
// it. Produced by VReadManager.MigrateMount.
type MountMigration = core.MountMigration

// ---------------------------------------------------------------------------
// Tracing: the per-request observability spine. Install a Tracer on a
// DFSClient or QFSClient with SetTracer; every layer of the read path then
// records spans, events and CPU-cycle charges on sampled requests.

// Trace is one request's journey through the read path.
type Trace = trace.Trace

// TraceSpan is one timed stage of a request.
type TraceSpan = trace.Span

// TraceLayer identifies the architectural layer a span belongs to.
type TraceLayer = trace.Layer

// Tracer samples requests at client entry points into a TraceCollector.
type Tracer = trace.Tracer

// TraceCollector accumulates finished traces.
type TraceCollector = trace.Collector

// StageStat summarizes one (layer, span) stage across traces: count, bytes,
// and latency percentiles.
type StageStat = trace.StageStat

// NewTracer creates a tracer sampling every Nth request.
func NewTracer(env *Env, every int) *Tracer { return trace.NewTracer(env, every) }

// NewTracerInto is NewTracer appending into a shared collector.
func NewTracerInto(env *Env, every int, col *TraceCollector) *Tracer {
	return trace.NewTracerInto(env, every, col)
}

// Trace exporters and reducers.
var (
	// WriteChromeTrace writes traces as Chrome trace_event JSON
	// (chrome://tracing, Perfetto).
	WriteChromeTrace = trace.WriteChrome
	// WriteTraceSpansCSV writes one CSV row per span.
	WriteTraceSpansCSV = trace.WriteSpansCSV
	// TraceStages reduces traces to per-stage latency percentiles.
	TraceStages = trace.Stages
	// WriteTraceStagesCSV writes the per-stage statistics as CSV.
	WriteTraceStagesCSV = trace.WriteStagesCSV
	// TraceBreakdownCycles sums trace cycle charges into entity → tag →
	// cycles (the span-derived Figure 6–8 bars).
	TraceBreakdownCycles = trace.BreakdownCycles
)

// ---------------------------------------------------------------------------
// QFS (the §3 generalization: a second DFS served by the same vRead).

// QFSMetaServer tracks QFS file → chunk metadata.
type QFSMetaServer = qfs.MetaServer

// QFSChunkServer stores chunk files inside a VM.
type QFSChunkServer = qfs.ChunkServer

// QFSClient reads and writes chunk-striped files.
type QFSClient = qfs.Client

// QFSConfig holds QFS parameters.
type QFSConfig = qfs.Config

// NewQFSMetaServer creates a QFS metaserver.
func NewQFSMetaServer(env *Env, cfg QFSConfig) *QFSMetaServer {
	return qfs.NewMetaServer(env, cfg)
}

// StartQFSChunkServer boots a chunk server in a VM kernel.
func StartQFSChunkServer(env *Env, ms *QFSMetaServer, kernel *Kernel) *QFSChunkServer {
	return qfs.StartChunkServer(env, ms, kernel)
}

// NewQFSClient creates a QFS client in a VM kernel.
func NewQFSClient(env *Env, ms *QFSMetaServer, kernel *Kernel) *QFSClient {
	return qfs.NewClient(env, ms, kernel)
}

// QFSPathReader adapts a client VM's libvread into QFS's reader hook.
func QFSPathReader(lib *VReadLib) qfs.PathReader {
	return qfs.PathReaderFunc(func(p *Proc, tr *trace.Trace, server, path, key string) (qfs.Handle, bool) {
		return lib.OpenPath(p, tr, server, path, key)
	})
}

// UseVReadWithQFS wires a client VM's libvread into a QFS client and
// subscribes the manager to the metaserver's refresh events. Call it once,
// before any QFS writes; toggle the shortcut afterwards with
// client.SetPathReader(QFSPathReader(lib)) / SetPathReader(nil).
func UseVReadWithQFS(mgr *VReadManager, ms *QFSMetaServer, client *QFSClient, lib *VReadLib) {
	ms.AddListener(mgr)
	client.SetPathReader(QFSPathReader(lib))
}

// ---------------------------------------------------------------------------
// Workloads.

// MapRedEngine is the miniature MapReduce engine.
type MapRedEngine = mapred.Engine

// MapRedConfig configures it.
type MapRedConfig = mapred.Config

// NewMapRedEngine creates an engine.
func NewMapRedEngine(env *Env, cfg MapRedConfig) *MapRedEngine {
	return mapred.NewEngine(env, cfg)
}

// DFSIOConfig parameterizes TestDFSIO runs.
type DFSIOConfig = workload.DFSIOConfig

// DFSIOResult is a TestDFSIO outcome.
type DFSIOResult = workload.DFSIOResult

// StartLookbusy runs an 85%-style CPU hog in a VM.
var StartLookbusy = workload.StartLookbusy

// StartNetperfServer and RunNetperfRR drive the Figure 3 microbenchmark.
var (
	StartNetperfServer = workload.StartNetperfServer
	RunNetperfRR       = workload.RunNetperfRR
)

// RunDFSIOWrite / RunDFSIORead drive TestDFSIO.
var (
	RunDFSIOWrite = workload.RunDFSIOWrite
	RunDFSIORead  = workload.RunDFSIORead
)

// ---------------------------------------------------------------------------
// Experiments: every figure and table of §5.

// Options configures one experiment testbed.
type Options = experiments.Options

// Testbed is a built instance of the paper's Figure 10 topology.
type Testbed = experiments.Testbed

// RunStats accumulates engine totals (simulated event counts) across every
// testbed an experiment builds; set Options.Stats to collect them.
type RunStats = experiments.RunStats

// Scenario places replicas relative to the reader.
type Scenario = experiments.Scenario

// Scenarios of §5.2.
const (
	Colocated = experiments.Colocated
	Remote    = experiments.Remote
	Hybrid    = experiments.Hybrid
)

// NewTestbed builds the two-host testbed of Figure 10.
func NewTestbed(opt Options) *Testbed { return experiments.NewTestbed(opt) }

// ParseOptions decodes a JSON scenario file (see cmd/vread-sim -config)
// into Options and a placement Scenario.
var ParseOptions = experiments.ParseOptions

// ParseScaleOptions decodes a scenario file and reports whether it selects
// the datacenter-scale path ("scale_out" present).
var ParseScaleOptions = experiments.ParseScaleOptions

// ScaleConfig describes a datacenter-scale scenario: a federated namespace
// over a multi-domain topology driven by an open-loop read storm, with an
// optional mid-storm rack kill.
type ScaleConfig = experiments.ScaleConfig

// SLORow is one p50/p95/p99 read-latency row of a scale run.
type SLORow = experiments.SLORow

// RunScale runs one federated scale cell per QPS level and returns SLO rows
// (byte-identical between serial and parallel runs).
var RunScale = experiments.RunScale

// RenderSLORows renders SLO rows one per line.
var RenderSLORows = experiments.RenderSLORows

// MigrationConfig describes the live-mount-migration blackout sweep: reader
// depths, the per-stream storm, and when the cutover fires.
type MigrationConfig = experiments.MigrationConfig

// MigrationRow is one depth's blackout measurement: quiesce window, captured
// in-flight descriptors, and worst read latency inside vs outside it.
type MigrationRow = experiments.MigrationRow

// RunMigrationSweep live-migrates a datanode's mount out from under
// concurrent reader streams, one cell per depth. Zero lost or corrupted reads
// is the contract; rows are byte-identical between serial and parallel runs.
var RunMigrationSweep = experiments.RunMigrationSweep

// CSVMigration renders migration sweep rows as CSV; FormatMigration as an
// aligned table.
var (
	CSVMigration    = experiments.CSVMigration
	FormatMigration = experiments.FormatMigration
)

// ParseMigrateOptions decodes a scenario file and reports whether it selects
// the migration sweep ("migrate" present).
var ParseMigrateOptions = experiments.ParseMigrateOptions

// ShardGridConfig describes a sharded read-storm scenario: a topology of
// single-Env-per-host LPs advanced in parallel under conservative lookahead,
// with closed-loop client streams reading from datanode hosts.
type ShardGridConfig = experiments.ShardGridConfig

// ShardGridCell is one shard count's run of the grid: K-invariant rows and
// fingerprint plus the wall clock that the shards are meant to shrink.
type ShardGridCell = experiments.ShardGridCell

// RunShardGrid runs the sharded read storm once per configured shard count.
// Rows, fingerprints, and event counts are byte-identical across counts.
var RunShardGrid = experiments.RunShardGrid

// Experiment runners, one per paper artifact.
var (
	RunFig2       = experiments.RunFig2
	RunFig3       = experiments.RunFig3
	RunFig6       = experiments.RunFig6
	RunFig7       = experiments.RunFig7
	RunFig8       = experiments.RunFig8
	RunFig9       = experiments.RunFig9
	RunFig11and12 = experiments.RunFig11and12
	RunDFSIOPoint = experiments.RunDFSIOPoint
	RunFig13      = experiments.RunFig13
	RunTable2     = experiments.RunTable2
	RunTable3     = experiments.RunTable3
)

// Per-stage latency reducers (delay and DFSIO experiments with every
// request traced, reduced to p50/p95/p99 per stage).
var (
	RunDelayStages = experiments.RunDelayStages
	RunDFSIOStages = experiments.RunDFSIOStages
)

// Ablation runners for the design choices DESIGN.md calls out.
var (
	RunAblationRingSlots    = experiments.RunAblationRingSlots
	RunAblationDirectRead   = experiments.RunAblationDirectRead
	RunAblationTransport    = experiments.RunAblationTransport
	RunAblationShortCircuit = experiments.RunAblationShortCircuit
	RunAblationSRIOV        = experiments.RunAblationSRIOV
	RunFaultSweep           = experiments.RunFaultSweep
)

// ---------------------------------------------------------------------------
// Deterministic fault injection (DESIGN.md §9).

// FaultSpec is a parsed set of fault rules; build one with ParseFaultSpec or
// literal FaultRule values, then arm it via Options.Faults or FaultSpec.Plan.
type FaultSpec = faults.Spec

// FaultRule arms one faultpoint (probability, after-N, one-shot, delay).
type FaultRule = faults.Rule

// FaultPlan is an armed, seeded fault plan bound to one Env.
type FaultPlan = faults.Plan

// FaultPointCount reports one faultpoint's evaluation and fire tallies.
type FaultPointCount = faults.PointCount

// FaultProfile names one fault mix of the RunFaultSweep ablation.
type FaultProfile = experiments.FaultProfile

// ParseFaultSpec parses "point[:opt,...][;point...]" syntax, e.g.
// "disk.read.slow:p=0.2,delay=2ms;rdma.qp.teardown:after=100,max=1".
var ParseFaultSpec = faults.ParseSpec

// FaultPoints lists every registered faultpoint name.
var FaultPoints = faults.Points

// DefaultFaultProfiles is RunFaultSweep's standard resilience grid.
var DefaultFaultProfiles = experiments.DefaultFaultProfiles

// NewFaultPlan creates an empty plan bound to env; arm points with Set.
func NewFaultPlan(env *Env) *FaultPlan { return faults.NewPlan(env) }

// Row types.
type (
	// Fig2Row is one Figure 2 measurement.
	Fig2Row = experiments.Fig2Row
	// Fig3Row is one Figure 3 measurement.
	Fig3Row = experiments.Fig3Row
	// BreakdownRow is one stacked bar of Figures 6–8.
	BreakdownRow = experiments.BreakdownRow
	// Fig9Row is one Figure 9 measurement.
	Fig9Row = experiments.Fig9Row
	// DFSIORow is one Figures 11/12 grid point.
	DFSIORow = experiments.DFSIORow
	// Fig13Row is one Figure 13 measurement.
	Fig13Row = experiments.Fig13Row
	// Table2Row is one Table 2 row.
	Table2Row = experiments.Table2Row
	// Table3Row is one Table 3 row.
	Table3Row = experiments.Table3Row
	// AblationRow is one ablation measurement.
	AblationRow = experiments.AblationRow
)

// Formatters render rows the way the paper reports them.
var (
	FormatFig2       = experiments.FormatFig2
	FormatFig3       = experiments.FormatFig3
	FormatBreakdowns = experiments.FormatBreakdowns
	FormatFig9       = experiments.FormatFig9
	FormatDFSIO      = experiments.FormatDFSIO
	FormatFig13      = experiments.FormatFig13
	FormatTable2     = experiments.FormatTable2
	FormatTable3     = experiments.FormatTable3
	FormatAblations  = experiments.FormatAblations
)

// PaperFreqs is the paper's 1.6/2.0/3.2 GHz cpufreq sweep.
var PaperFreqs = experiments.PaperFreqs

// CSV exporters for every experiment row type (cmd/vread-bench -format csv).
var (
	CSVFig2       = experiments.CSVFig2
	CSVFig3       = experiments.CSVFig3
	CSVBreakdowns = experiments.CSVBreakdowns
	CSVFig9       = experiments.CSVFig9
	CSVDFSIO      = experiments.CSVDFSIO
	CSVFig13      = experiments.CSVFig13
	CSVTable2     = experiments.CSVTable2
	CSVTable3     = experiments.CSVTable3
	CSVAblations  = experiments.CSVAblations
)
