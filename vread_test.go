package vread_test

import (
	"testing"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// TestPublicAPIRoundTrip exercises the facade the way the README's
// quickstart does: build a testbed, write, read through both paths, verify
// bytes and the vRead win.
func TestPublicAPIRoundTrip(t *testing.T) {
	tb := vread.NewTestbed(vread.Options{Seed: 42, VRead: true, Scale: 0.02})
	defer tb.Close()
	tb.Place(vread.Colocated)

	content := data.Pattern{Seed: 7, Size: 16 << 20}
	var vanilla, withVRead time.Duration
	err := tb.Run("api-roundtrip", time.Hour, func(p *sim.Proc) error {
		if err := tb.Client.WriteFile(p, "/t/f", content); err != nil {
			return err
		}
		read := func() (time.Duration, error) {
			tb.DropAllCaches()
			start := tb.C.Env.Now()
			r, err := tb.Client.Open(p, "/t/f")
			if err != nil {
				return 0, err
			}
			defer r.Close(p)
			got, err := r.ReadFull(p, content.Size)
			if err != nil {
				return 0, err
			}
			if !data.Equal(got, data.NewSlice(content)) {
				t.Error("bytes corrupted")
			}
			return tb.C.Env.Now() - start, nil
		}
		tb.Client.SetBlockReader(nil)
		var err error
		if vanilla, err = read(); err != nil {
			return err
		}
		tb.Client.SetBlockReader(tb.Lib)
		withVRead, err = read()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if withVRead >= vanilla {
		t.Fatalf("vRead %v not faster than vanilla %v", withVRead, vanilla)
	}
}

// TestPublicAPICustomCluster builds a deployment from primitives (the
// examples' other entry point): cluster, namenode, datanodes, client,
// vRead manager.
func TestPublicAPICustomCluster(t *testing.T) {
	c := vread.NewCluster(1, vread.ClusterParams{})
	defer c.Close()
	h1 := c.AddHost("alpha")
	h2 := c.AddHost("beta")
	clientVM := h1.AddVM("app", metrics.TagClientApp)
	dnVM := h2.AddVM("store", metrics.TagDatanodeApp)

	nn := vread.NewNameNode(c.Env, vread.HDFSConfig{BlockSize: 4 << 20}, c.Fabric)
	vread.StartDataNode(c.Env, nn, dnVM.Kernel)
	client := vread.NewDFSClient(c.Env, nn, clientVM.Kernel)

	mgr := vread.NewVReadManager(c, nn, vread.VReadConfig{Transport: vread.TransportTCP})
	mgr.MountDatanode("store")
	client.SetBlockReader(mgr.EnableClient("app"))

	content := data.Pattern{Seed: 9, Size: 6 << 20}
	done := false
	c.Go("driver", func(p *sim.Proc) {
		if err := client.WriteFile(p, "/x", content); err != nil {
			t.Error(err)
			return
		}
		r, err := client.Open(p, "/x")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("bytes corrupted through custom cluster")
		}
		done = true
	})
	if err := c.Env.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	// The remote read went daemon-to-daemon over the TCP transport.
	if st := mgr.Daemon("app").Stats(); st.BytesRemote != content.Size {
		t.Fatalf("remote bytes = %d, want %d", st.BytesRemote, content.Size)
	}
}

// TestSeedDeterminism: the facade promise — identical seeds, identical
// results.
func TestSeedDeterminism(t *testing.T) {
	run := func() []vread.Fig3Row {
		rows, err := vread.RunFig3(vread.Options{Seed: 5, Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestManagerStatsAccessors: the public per-VM stats accessors expose the
// daemon's and libvread's derived counters, and return zero values (not
// panics) for unknown VMs.
func TestManagerStatsAccessors(t *testing.T) {
	tb := vread.NewTestbed(vread.Options{Seed: 3, VRead: true, Scale: 0.02})
	defer tb.Close()
	tb.Place(vread.Colocated)

	content := data.Pattern{Seed: 5, Size: 8 << 20}
	err := tb.Run("stats-accessors", time.Hour, func(p *sim.Proc) error {
		if err := tb.Client.WriteFile(p, "/s/f", content); err != nil {
			return err
		}
		tb.DropAllCaches()
		r, err := tb.Client.Open(p, "/s/f")
		if err != nil {
			return err
		}
		defer r.Close(p)
		_, err = r.ReadFull(p, content.Size)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	ds := tb.Mgr.DaemonStats("client")
	if ds.Opens == 0 {
		t.Error("daemon recorded no opens")
	}
	if ds.BytesLocal != content.Size {
		t.Errorf("BytesLocal = %d, want %d (co-located read is all-local)", ds.BytesLocal, content.Size)
	}
	if ds.BytesRemote != 0 {
		t.Errorf("BytesRemote = %d, want 0", ds.BytesRemote)
	}

	ls := tb.Mgr.LibStats("client")
	if ls.Opens == 0 || ls.Reads == 0 {
		t.Errorf("lib stats empty: %+v", ls)
	}
	if ls.BytesRead != content.Size {
		t.Errorf("lib BytesRead = %d, want %d", ls.BytesRead, content.Size)
	}

	if got := tb.Mgr.DaemonStats("no-such-vm"); got != (vread.DaemonStats{}) {
		t.Errorf("unknown VM daemon stats = %+v, want zero", got)
	}
	if got := tb.Mgr.LibStats("no-such-vm"); got != (vread.LibStats{}) {
		t.Errorf("unknown VM lib stats = %+v, want zero", got)
	}
}
