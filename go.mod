module vread

go 1.22
