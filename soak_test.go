package vread_test

import (
	"fmt"
	"testing"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/faults/chaostest"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// TestSoakChurn drives the full stack through sustained churn: concurrent
// writers and readers over HDFS with vRead enabled, file deletions,
// background hogs, and a datanode live migration in the middle — then
// checks the invariants that must survive all of it:
//
//   - every read returned exactly the written bytes;
//   - no vRead open ever failed after its block's refresh landed
//     (fallbacks only from the deliberately unmounted datanode);
//   - no simulated processes leaked beyond the long-lived service loops;
//   - the accounting registry conserved cycles (nothing negative, totals
//     grow monotonically).
func TestSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	c := vread.NewCluster(99, vread.ClusterParams{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)
	for i := 0; i < 2; i++ {
		hog := h2.AddVM(fmt.Sprintf("hog%d", i), metrics.TagClientApp)
		vread.StartLookbusy(hog, 0.85, 0)
	}

	nn := vread.NewNameNode(c.Env, vread.HDFSConfig{BlockSize: 4 << 20}, c.Fabric)
	vread.StartDataNode(c.Env, nn, dn1VM.Kernel)
	vread.StartDataNode(c.Env, nn, dn2VM.Kernel)
	client := vread.NewDFSClient(c.Env, nn, clientVM.Kernel)
	mgr := vread.NewVReadManager(c, nn, vread.VReadConfig{})
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	client.SetBlockReader(mgr.EnableClient("client"))

	baseLive := c.Env.Live() // service loops that legitimately persist

	const generations = 6
	const filesPerGen = 3
	verified := 0
	fail := func(format string, args ...interface{}) {
		t.Errorf(format, args...)
	}
	done := false
	c.Go("churn", func(p *sim.Proc) {
		for gen := 0; gen < generations; gen++ {
			// Write a generation of files with alternating placement.
			contents := make([]data.Pattern, filesPerGen)
			for i := range contents {
				contents[i] = data.Pattern{Seed: uint64(gen*100 + i), Size: int64(1+i) << 20}
				path := fmt.Sprintf("/soak/g%d/f%d", gen, i)
				if err := client.WriteFile(p, path, contents[i]); err != nil {
					fail("gen %d write %d: %v", gen, i, err)
					return
				}
			}
			// Read them all back, sequential and positional, and verify.
			for i := range contents {
				path := fmt.Sprintf("/soak/g%d/f%d", gen, i)
				r, err := client.Open(p, path)
				if err != nil {
					fail("gen %d open %d: %v", gen, i, err)
					return
				}
				got, err := r.ReadFull(p, contents[i].Size)
				if err != nil {
					r.Close(p)
					fail("gen %d read %d: %v", gen, i, err)
					return
				}
				if !data.Equal(got, data.NewSlice(contents[i])) {
					r.Close(p)
					fail("gen %d file %d corrupted", gen, i)
					return
				}
				if s, err := r.ReadAt(p, contents[i].Size/2, 4096); err != nil ||
					!data.Equal(s, data.NewSlice(contents[i]).Sub(contents[i].Size/2, 4096)) {
					r.Close(p)
					fail("gen %d pread %d failed: %v", gen, i, err)
					return
				}
				r.Close(p)
				verified++
			}
			// Delete the previous generation (dentry refresh churn).
			if gen > 0 {
				for i := 0; i < filesPerGen; i++ {
					if err := client.DeleteFile(p, fmt.Sprintf("/soak/g%d/f%d", gen-1, i)); err != nil {
						fail("gen %d delete: %v", gen, err)
						return
					}
				}
			}
			// Mid-soak: live-migrate dn1 away and back.
			if gen == 2 {
				c.MigrateVM("dn1", h2)
				mgr.DatanodeMigrated("dn1", "host1")
			}
			if gen == 4 {
				c.MigrateVM("dn1", h1)
				mgr.DatanodeMigrated("dn1", "host2")
			}
		}
		done = true
	})
	if err := c.Env.RunUntil(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("churn did not finish within the virtual deadline")
	}
	if verified != generations*filesPerGen {
		t.Fatalf("verified %d of %d files", verified, generations*filesPerGen)
	}
	st := mgr.Daemon("client").Stats()
	if st.OpenMisses != 0 {
		t.Fatalf("unexpected vRead fallbacks during soak: %d", st.OpenMisses)
	}
	if st.BytesLocal+st.BytesRemote == 0 {
		t.Fatal("vRead served nothing during soak")
	}
	// Process hygiene: only the long-lived service loops (+hog pair and
	// migration-recreated device loops) may remain.
	if live := c.Env.Live(); live > baseLive+12 {
		t.Fatalf("leaked processes: %d live vs %d at start", live, baseLive)
	}
	if c.Reg.TotalCycles() <= 0 {
		t.Fatal("registry conserved nothing")
	}
}

// TestSoakChaosStorm is the soak test's chaos sibling: a long random read
// storm with every faultpoint armed at once, run through the chaostest
// harness so all of its invariants apply (correct bytes or typed error,
// balanced spans, drained event loop, no leaked remote reads) — then run
// again from the same seed to assert the whole storm replays byte-
// identically, fault schedule included.
func TestSoakChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	spec, err := vread.ParseFaultSpec(
		"disk.read.slow:p=0.15,delay=1ms;disk.read.error:p=0.02;disk.read.torn:p=0.04;" +
			"net.frame.drop:p=0.02;net.frame.delay:p=0.15,delay=500us;" +
			"rdma.qp.teardown:p=0.015;ring.doorbell.lost:p=0.15;ring.stall:p=0.15,delay=200us;" +
			"daemon.crash:p=0.015")
	if err != nil {
		t.Fatal(err)
	}
	run := func() chaostest.Result {
		return chaostest.Run(chaostest.Options{
			Seed:     2025,
			Spec:     spec,
			Files:    4,
			FileSize: 2 << 20,
			Reads:    120,
			Deadline: 8 * time.Hour,
		})
	}
	res := run()
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.OKs == 0 {
		t.Fatal("no read survived the chaos soak")
	}
	if res.DistinctFired() < 6 {
		t.Errorf("only %d distinct faultpoints fired during the soak: %+v",
			res.DistinctFired(), res.FaultCounts)
	}
	if again := run(); again.Fingerprint != res.Fingerprint {
		t.Errorf("chaos soak is not reproducible: %016x vs %016x",
			res.Fingerprint, again.Fingerprint)
	}
	t.Logf("chaos soak: %d ok / %d typed errors / %d open misses; %d faultpoints fired",
		res.OKs, res.TypedErrors, res.OpenMisses, res.DistinctFired())
}
