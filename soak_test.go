package vread_test

import (
	"fmt"
	"testing"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/faults/chaostest"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// TestSoakChurn drives the full stack through sustained churn: concurrent
// writers and readers over HDFS with vRead enabled, file deletions,
// background hogs, and a datanode live migration in the middle — then
// checks the invariants that must survive all of it:
//
//   - every read returned exactly the written bytes;
//   - no vRead open ever failed after its block's refresh landed
//     (fallbacks only from the deliberately unmounted datanode);
//   - no simulated processes leaked beyond the long-lived service loops;
//   - the accounting registry conserved cycles (nothing negative, totals
//     grow monotonically).
func TestSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	c := vread.NewCluster(99, vread.ClusterParams{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)
	for i := 0; i < 2; i++ {
		hog := h2.AddVM(fmt.Sprintf("hog%d", i), metrics.TagClientApp)
		vread.StartLookbusy(hog, 0.85, 0)
	}

	nn := vread.NewNameNode(c.Env, vread.HDFSConfig{BlockSize: 4 << 20}, c.Fabric)
	vread.StartDataNode(c.Env, nn, dn1VM.Kernel)
	vread.StartDataNode(c.Env, nn, dn2VM.Kernel)
	client := vread.NewDFSClient(c.Env, nn, clientVM.Kernel)
	mgr := vread.NewVReadManager(c, nn, vread.VReadConfig{})
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	client.SetBlockReader(mgr.EnableClient("client"))

	baseLive := c.Env.Live() // service loops that legitimately persist

	const generations = 6
	const filesPerGen = 3
	verified := 0
	fail := func(format string, args ...interface{}) {
		t.Errorf(format, args...)
	}
	done := false
	c.Go("churn", func(p *sim.Proc) {
		for gen := 0; gen < generations; gen++ {
			// Write a generation of files with alternating placement.
			contents := make([]data.Pattern, filesPerGen)
			for i := range contents {
				contents[i] = data.Pattern{Seed: uint64(gen*100 + i), Size: int64(1+i) << 20}
				path := fmt.Sprintf("/soak/g%d/f%d", gen, i)
				if err := client.WriteFile(p, path, contents[i]); err != nil {
					fail("gen %d write %d: %v", gen, i, err)
					return
				}
			}
			// Read them all back, sequential and positional, and verify.
			for i := range contents {
				path := fmt.Sprintf("/soak/g%d/f%d", gen, i)
				r, err := client.Open(p, path)
				if err != nil {
					fail("gen %d open %d: %v", gen, i, err)
					return
				}
				got, err := r.ReadFull(p, contents[i].Size)
				if err != nil {
					r.Close(p)
					fail("gen %d read %d: %v", gen, i, err)
					return
				}
				if !data.Equal(got, data.NewSlice(contents[i])) {
					r.Close(p)
					fail("gen %d file %d corrupted", gen, i)
					return
				}
				if s, err := r.ReadAt(p, contents[i].Size/2, 4096); err != nil ||
					!data.Equal(s, data.NewSlice(contents[i]).Sub(contents[i].Size/2, 4096)) {
					r.Close(p)
					fail("gen %d pread %d failed: %v", gen, i, err)
					return
				}
				r.Close(p)
				verified++
			}
			// Delete the previous generation (dentry refresh churn).
			if gen > 0 {
				for i := 0; i < filesPerGen; i++ {
					if err := client.DeleteFile(p, fmt.Sprintf("/soak/g%d/f%d", gen-1, i)); err != nil {
						fail("gen %d delete: %v", gen, err)
						return
					}
				}
			}
			// Mid-soak: live-migrate dn1 away and back.
			if gen == 2 {
				c.MigrateVM("dn1", h2)
				mgr.DatanodeMigrated("dn1", "host1")
			}
			if gen == 4 {
				c.MigrateVM("dn1", h1)
				mgr.DatanodeMigrated("dn1", "host2")
			}
		}
		done = true
	})
	if err := c.Env.RunUntil(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("churn did not finish within the virtual deadline")
	}
	if verified != generations*filesPerGen {
		t.Fatalf("verified %d of %d files", verified, generations*filesPerGen)
	}
	st := mgr.Daemon("client").Stats()
	if st.OpenMisses != 0 {
		t.Fatalf("unexpected vRead fallbacks during soak: %d", st.OpenMisses)
	}
	if st.BytesLocal+st.BytesRemote == 0 {
		t.Fatal("vRead served nothing during soak")
	}
	// Process hygiene: only the long-lived service loops (+hog pair and
	// migration-recreated device loops) may remain.
	if live := c.Env.Live(); live > baseLive+12 {
		t.Fatalf("leaked processes: %d live vs %d at start", live, baseLive)
	}
	if c.Reg.TotalCycles() <= 0 {
		t.Fatal("registry conserved nothing")
	}
}

// TestSoakChaosStorm is the soak test's chaos sibling: a long random read
// storm with every faultpoint armed at once, run through the chaostest
// harness so all of its invariants apply (correct bytes or typed error,
// balanced spans, drained event loop, no leaked remote reads) — then run
// again from the same seed to assert the whole storm replays byte-
// identically, fault schedule included.
func TestSoakChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	spec, err := vread.ParseFaultSpec(
		"disk.read.slow:p=0.15,delay=1ms;disk.read.error:p=0.02;disk.read.torn:p=0.04;" +
			"net.frame.drop:p=0.02;net.frame.delay:p=0.15,delay=500us;" +
			"rdma.qp.teardown:p=0.015;ring.doorbell.lost:p=0.15;ring.stall:p=0.15,delay=200us;" +
			"daemon.crash:p=0.015")
	if err != nil {
		t.Fatal(err)
	}
	run := func() chaostest.Result {
		return chaostest.Run(chaostest.Options{
			Seed:     2025,
			Spec:     spec,
			Files:    4,
			FileSize: 2 << 20,
			Reads:    120,
			Deadline: 8 * time.Hour,
		})
	}
	res := run()
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.OKs == 0 {
		t.Fatal("no read survived the chaos soak")
	}
	if res.DistinctFired() < 6 {
		t.Errorf("only %d distinct faultpoints fired during the soak: %+v",
			res.DistinctFired(), res.FaultCounts)
	}
	if again := run(); again.Fingerprint != res.Fingerprint {
		t.Errorf("chaos soak is not reproducible: %016x vs %016x",
			res.Fingerprint, again.Fingerprint)
	}
	t.Logf("chaos soak: %d ok / %d typed errors / %d open misses; %d faultpoints fired",
		res.OKs, res.TypedErrors, res.OpenMisses, res.DistinctFired())
}

// TestSoakHostileStorm soaks the ring trust boundary: a seed × plan matrix of
// long hostile-guest storms — forged descriptors, stale keys, doorbell
// storms, held slots, live migrations, and all of them at once — with the
// per-VM isolation invariant on top of the usual four: the victim cohort
// must read perfectly no matter what the hostile guest does. Every new ring
// faultpoint must fire somewhere in the matrix, and every cell must replay
// byte-identically from its seed.
func TestSoakHostileStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("hostile soak skipped in -short mode")
	}
	plans := []struct {
		name string
		spec string
	}{
		{"forgery", "ring.badslot:p=0.25;ring.stalekey:p=0.25"},
		{"pressure", "ring.doorbellstorm:p=0.2;ring.slotheld:p=0.25,delay=300us"},
		{"migrate", "mount.migrate:p=0.15"},
		{"everything", "ring.badslot:p=0.15;ring.stalekey:p=0.15;ring.doorbellstorm:p=0.1;" +
			"ring.slotheld:p=0.1,delay=200us;mount.migrate:p=0.1"},
	}
	seeds := []int64{2025, 909}
	fired := make(map[string]bool)
	for _, plan := range plans {
		spec, err := vread.ParseFaultSpec(plan.spec)
		if err != nil {
			t.Fatalf("plan %s: %v", plan.name, err)
		}
		for _, seed := range seeds {
			o := chaostest.HostileOptions{
				Seed: seed, Spec: spec, Reads: 60, Deadline: 8 * time.Hour,
			}
			res := chaostest.RunHostile(o)
			for _, v := range res.Violations {
				t.Errorf("plan %s seed %d: %s", plan.name, seed, v)
			}
			if res.VictimOKs == 0 {
				t.Errorf("plan %s seed %d: no victim read survived", plan.name, seed)
			}
			for _, pc := range res.FaultCounts {
				if pc.Fires > 0 {
					fired[pc.Point] = true
				}
			}
			if again := chaostest.RunHostile(o); again.Fingerprint != res.Fingerprint {
				t.Errorf("plan %s seed %d does not replay: %016x vs %016x",
					plan.name, seed, res.Fingerprint, again.Fingerprint)
			}
		}
	}
	for _, point := range []string{
		"ring.badslot", "ring.stalekey", "ring.doorbellstorm", "ring.slotheld", "mount.migrate",
	} {
		if !fired[point] {
			t.Errorf("faultpoint %s never fired across the hostile soak matrix", point)
		}
	}
}

// TestSoakMigrationStorm soaks live mount migration under concurrent load:
// the blackout sweep at greater depths and storm lengths than the smoke
// config. RunMigrationSweep errors on any lost, failed, or corrupted read, so
// a nil error IS the durability assertion; on top of it the blackout must be
// finite and the rows must replay byte-identically.
func TestSoakMigrationStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("migration soak skipped in -short mode")
	}
	mc := vread.MigrationConfig{
		Seed:           2025,
		Depths:         []int{1, 4, 8, 12},
		ReadsPerStream: 20,
	}
	rows, err := vread.RunMigrationSweep(vread.Options{Seed: 2025}, mc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Blackout <= 0 || r.Blackout > time.Minute {
			t.Errorf("depth %d: blackout %v out of range", r.Depth, r.Blackout)
		}
		if r.Captured == 0 {
			t.Errorf("depth %d: no in-flight descriptor rode through the cutover", r.Depth)
		}
		t.Logf("depth %2d: blackout %v, %d captured, worst in/out %v/%v",
			r.Depth, r.Blackout, r.Captured, r.WorstIn, r.WorstOut)
	}
	again, err := vread.RunMigrationSweep(vread.Options{Seed: 2025}, mc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Errorf("row %d does not replay: %+v vs %+v", i, rows[i], again[i])
		}
	}
}
