package vread_test

import (
	"fmt"
	"log"
	"time"

	"vread"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// Example shows the one-minute tour: build the paper's testbed, write a
// file into HDFS, read it back through vRead, and verify every byte.
func Example() {
	tb := vread.NewTestbed(vread.Options{Seed: 1, VRead: true})
	defer tb.Close()
	tb.Place(vread.Colocated)

	content := data.Pattern{Seed: 42, Size: 8 << 20}
	err := tb.Run("example", time.Hour, func(p *sim.Proc) error {
		if err := tb.Client.WriteFile(p, "/hello", content); err != nil {
			return err
		}
		r, err := tb.Client.Open(p, "/hello")
		if err != nil {
			return err
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			return err
		}
		fmt.Println("bytes verified:", data.Equal(got, data.NewSlice(content)))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// The datanode process streamed nothing: the daemon served it all.
	fmt.Println("served by datanode over TCP:", tb.DN1.ServedBytes())
	st := tb.Mgr.Daemon("client").Stats()
	fmt.Println("served by vRead daemon:", st.BytesLocal == content.Size)
	// Output:
	// bytes verified: true
	// served by datanode over TCP: 0
	// served by vRead daemon: true
}

// ExampleNewCluster builds a deployment from primitives instead of the
// experiment testbed: two hosts, a remote datanode, vRead over TCP daemons.
func ExampleNewCluster() {
	c := vread.NewCluster(7, vread.ClusterParams{})
	defer c.Close()
	h1 := c.AddHost("alpha")
	h2 := c.AddHost("beta")
	app := h1.AddVM("app", metrics.TagClientApp)
	store := h2.AddVM("store", metrics.TagDatanodeApp)

	nn := vread.NewNameNode(c.Env, vread.HDFSConfig{}, c.Fabric)
	vread.StartDataNode(c.Env, nn, store.Kernel)
	client := vread.NewDFSClient(c.Env, nn, app.Kernel)

	mgr := vread.NewVReadManager(c, nn, vread.VReadConfig{Transport: vread.TransportTCP})
	mgr.MountDatanode("store")
	client.SetBlockReader(mgr.EnableClient("app"))

	content := data.Pattern{Seed: 5, Size: 2 << 20}
	c.Go("driver", func(p *sim.Proc) {
		if err := client.WriteFile(p, "/x", content); err != nil {
			fmt.Println("write:", err)
			return
		}
		r, err := client.Open(p, "/x")
		if err != nil {
			fmt.Println("open:", err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			fmt.Println("read:", err)
			return
		}
		fmt.Println("round trip ok:", data.Equal(got, data.NewSlice(content)))
	})
	if err := c.Env.RunUntil(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon-to-daemon bytes:", mgr.Daemon("app").Stats().BytesRemote == content.Size)
	// Output:
	// round trip ok: true
	// daemon-to-daemon bytes: true
}

// ExampleRunFig3 regenerates one paper artifact programmatically.
func ExampleRunFig3() {
	rows, err := vread.RunFig3(vread.Options{Seed: 1, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	rate := map[int]float64{}
	for _, r := range rows {
		if r.ReqSize == 32<<10 {
			rate[r.VMs] = r.Rate
		}
	}
	fmt.Println("lookbusy VMs reduce the TCP_RR rate:", rate[4] < rate[2])
	// Output:
	// lookbusy VMs reduce the TCP_RR rate: true
}
